//! Network power models (paper §3.1).
//!
//! "The total power required to send a flit through the network can be
//! decomposed into the power per hop (traversal of input and output
//! controllers) and power per wire distance traveled."
//!
//! [`NetworkEnergyModel`] converts the simulator's raw event counters
//! into joules; [`TopologyPowerModel`] evaluates the paper's closed-form
//! mesh-vs-torus comparison: the mesh needs more hops but shorter wires,
//! so it wins when wire power dominates hop power, while at the paper's
//! design point the folded torus costs less than 15% extra power and
//! buys twice the bisection bandwidth.

use crate::tech::Technology;
use crate::wire::{SignalingScheme, WireModel};

/// Converts flit-hop and bit-millimeter counts into energy.
#[derive(Debug, Clone)]
pub struct NetworkEnergyModel {
    /// Energy per bit per router traversal (buffer write + read,
    /// arbitration, crossbar), picojoules.
    pub e_hop_per_bit_pj: f64,
    /// Energy per bit per millimeter of inter-tile wire, picojoules.
    pub e_wire_per_bit_mm_pj: f64,
    /// Tile pitch, mm (converts the simulator's pitch-based distance).
    pub tile_mm: f64,
}

impl NetworkEnergyModel {
    /// Builds the model for a technology and signaling scheme.
    ///
    /// The hop energy default (0.15 pJ/bit) budgets two 300-bit buffer
    /// accesses plus arbitration and switch traversal; with full-swing
    /// links (0.25 pJ/bit/mm × 3 mm) wire energy per hop is then
    /// significantly larger than hop energy, matching the paper's
    /// estimate for the 16-tile network.
    pub fn new(tech: &Technology, scheme: SignalingScheme) -> NetworkEnergyModel {
        let wire = WireModel::new(tech);
        NetworkEnergyModel {
            e_hop_per_bit_pj: 0.15,
            e_wire_per_bit_mm_pj: wire.energy_per_bit_mm(scheme),
            tile_mm: tech.tile_mm,
        }
    }

    /// Energy, in picojoules, of moving one flit of `bits` bits over
    /// `hops` router traversals and `distance_pitches` tile pitches of
    /// wire.
    pub fn flit_energy_pj(&self, bits: u64, hops: f64, distance_pitches: f64) -> f64 {
        let b = bits as f64;
        b * hops * self.e_hop_per_bit_pj
            + b * distance_pitches * self.tile_mm * self.e_wire_per_bit_mm_pj
    }

    /// Total energy, picojoules, from simulator counters: `hop_bits`
    /// (bits × hops) and `link_bit_pitches` (bits × link pitches).
    pub fn total_energy_pj(&self, hop_bits: u64, link_bit_pitches: f64) -> f64 {
        hop_bits as f64 * self.e_hop_per_bit_pj
            + link_bit_pitches * self.tile_mm * self.e_wire_per_bit_mm_pj
    }

    /// Wire energy per hop-sized (one tile pitch) transfer relative to
    /// hop energy: the α that decides the §3.1 mesh-vs-torus trade.
    pub fn wire_to_hop_ratio(&self) -> f64 {
        self.e_wire_per_bit_mm_pj * self.tile_mm / self.e_hop_per_bit_pj
    }
}

/// Closed-form topology statistics for the §3.1 power expressions.
///
/// Averages are over all ordered pairs (including `src == dst`, as the
/// paper's `k/3`, `k/4` forms do); the simulator's exact distinct-pair
/// averages differ by a factor `n/(n−1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyPowerModel {
    /// Mean hops per packet.
    pub avg_hops: f64,
    /// Mean wire distance per packet, in tile pitches.
    pub avg_distance_pitches: f64,
    /// Unidirectional bisection channels.
    pub bisection_channels: usize,
}

impl TopologyPowerModel {
    /// The k×k mesh: `2·(k²−1)/(3k) ≈ 2k/3` hops, each over one pitch.
    pub fn mesh(k: usize) -> TopologyPowerModel {
        let kf = k as f64;
        let per_dim = (kf * kf - 1.0) / (3.0 * kf);
        TopologyPowerModel {
            avg_hops: 2.0 * per_dim,
            avg_distance_pitches: 2.0 * per_dim,
            bisection_channels: 2 * k,
        }
    }

    /// The k×k folded torus (even `k`): `k/2` hops; folded links average
    /// `(2k−2)/k` pitches, so distance ≈ `k−1` pitches.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd (the closed form assumes the even-radix
    /// torus).
    pub fn folded_torus(k: usize) -> TopologyPowerModel {
        assert!(k.is_multiple_of(2), "closed form requires even radix");
        let kf = k as f64;
        let hops = 2.0 * (kf / 4.0);
        let link = (2.0 * kf - 2.0) / kf;
        TopologyPowerModel {
            avg_hops: hops,
            avg_distance_pitches: hops * link,
            bisection_channels: 4 * k,
        }
    }

    /// Mean energy per flit, picojoules.
    pub fn energy_per_flit_pj(&self, model: &NetworkEnergyModel, bits: u64) -> f64 {
        model.flit_energy_pj(bits, self.avg_hops, self.avg_distance_pitches)
    }

    /// Power ratio of this topology over `base` at equal traffic.
    pub fn power_ratio(&self, base: &TopologyPowerModel, model: &NetworkEnergyModel) -> f64 {
        self.energy_per_flit_pj(model, 256) / base.energy_per_flit_pj(model, 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_model() -> NetworkEnergyModel {
        NetworkEnergyModel::new(&Technology::dac2001(), SignalingScheme::FullSwing)
    }

    #[test]
    fn wire_energy_dominates_hop_energy_at_design_point() {
        // Paper: "wire transmission power is significantly greater than
        // per hop power for our 16 tile network."
        let m = fs_model();
        assert!(
            m.wire_to_hop_ratio() > 2.0,
            "ratio {}",
            m.wire_to_hop_ratio()
        );
    }

    #[test]
    fn torus_overhead_below_15_percent_at_design_point() {
        // Paper: "the power overhead of the torus is small, less than 15%."
        let m = fs_model();
        let torus = TopologyPowerModel::folded_torus(4);
        let mesh = TopologyPowerModel::mesh(4);
        let ratio = torus.power_ratio(&mesh, &m);
        assert!(ratio < 1.15, "torus/mesh power ratio {ratio}");
        assert!(ratio > 1.0, "torus should still cost more than mesh");
    }

    #[test]
    fn mesh_wins_when_wire_power_dominates() {
        // Paper: "if wire transmission power dominates per hop power, the
        // mesh is more power efficient."
        let mut m = fs_model();
        m.e_wire_per_bit_mm_pj *= 100.0;
        let ratio =
            TopologyPowerModel::folded_torus(4).power_ratio(&TopologyPowerModel::mesh(4), &m);
        assert!(ratio > 1.15);
        // Conversely, when hop power dominates the torus wins outright.
        let mut m = fs_model();
        m.e_hop_per_bit_pj *= 100.0;
        let ratio =
            TopologyPowerModel::folded_torus(4).power_ratio(&TopologyPowerModel::mesh(4), &m);
        assert!(ratio < 1.0);
    }

    #[test]
    fn low_swing_shrinks_the_wire_term() {
        let ls = NetworkEnergyModel::new(&Technology::dac2001(), SignalingScheme::LowSwing);
        let fs = fs_model();
        assert!(ls.wire_to_hop_ratio() < fs.wire_to_hop_ratio() / 5.0);
        // With cheap wires the torus becomes the outright power winner.
        let ratio =
            TopologyPowerModel::folded_torus(4).power_ratio(&TopologyPowerModel::mesh(4), &ls);
        assert!(ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn torus_has_twice_the_bisection() {
        for k in [4usize, 8] {
            let t = TopologyPowerModel::folded_torus(k);
            let m = TopologyPowerModel::mesh(k);
            assert_eq!(t.bisection_channels, 2 * m.bisection_channels);
        }
    }

    #[test]
    fn closed_forms_match_paper_arithmetic() {
        let mesh = TopologyPowerModel::mesh(4);
        assert!((mesh.avg_hops - 2.5).abs() < 1e-12);
        let torus = TopologyPowerModel::folded_torus(4);
        assert!((torus.avg_hops - 2.0).abs() < 1e-12);
        assert!((torus.avg_distance_pitches - 3.0).abs() < 1e-12);
    }

    #[test]
    fn counter_conversion_is_consistent() {
        let m = fs_model();
        // One 256-bit flit, 2 hops, 3 pitches.
        let direct = m.flit_energy_pj(256, 2.0, 3.0);
        let counters = m.total_energy_pj(256 * 2, 256.0 * 3.0);
        assert!((direct - counters).abs() < 1e-9);
    }
}
