//! Router area and wiring-track budgets (paper §2.4, §3.1).
//!
//! "We estimate the logic, driver and receiver circuits, buffer storage,
//! and routing will occupy an area less than 50 µm wide by 3 mm long along
//! each edge of the tile for a total overhead of 0.59 mm² or 6.6% of the
//! tile area. In addition ... the router also uses about 3000 of the 6000
//! available wiring tracks on the top two metal layers."

use crate::tech::Technology;

/// Itemized area of the router logic along one tile edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Buffer storage, mm².
    pub buffers_mm2: f64,
    /// Control logic, mm².
    pub logic_mm2: f64,
    /// Drivers and receivers, mm².
    pub xcvr_mm2: f64,
}

impl AreaBreakdown {
    /// Total area of this edge, mm².
    pub fn total_mm2(&self) -> f64 {
        self.buffers_mm2 + self.logic_mm2 + self.xcvr_mm2
    }
}

/// Area model for the distributed router (one input + one output
/// controller per tile edge).
#[derive(Debug, Clone)]
pub struct RouterAreaModel {
    /// Buffer bits per edge (paper: 8 VCs × 4 flits × ~300 b ≈ 10⁴).
    pub buffer_bits_per_edge: usize,
    /// Control logic gates per edge ("a few thousand gates").
    pub logic_gates_per_edge: usize,
    /// Driver/receiver pairs per edge (≈ one per link wire, both
    /// directions).
    pub xcvr_pairs_per_edge: usize,
    /// SRAM bit cell area, µm².
    pub sram_bit_um2: f64,
    /// Average gate area including local wiring, µm².
    pub gate_um2: f64,
    /// Driver + receiver pair area, µm².
    pub xcvr_um2: f64,
}

impl RouterAreaModel {
    /// The paper's baseline: 8 VCs × 4 flits × 300 b of buffering, ~3000
    /// gates, and ~600 transceiver pairs per edge in 0.1 µm.
    pub fn paper_baseline() -> RouterAreaModel {
        RouterAreaModel {
            buffer_bits_per_edge: 9_600,
            logic_gates_per_edge: 3_000,
            xcvr_pairs_per_edge: 600,
            sram_bit_um2: 10.0,
            gate_um2: 12.0,
            xcvr_um2: 20.0,
        }
    }

    /// A variant with different buffering (for §3.2 flow-control area
    /// comparisons): `vcs × depth` flit buffers of `flit_bits` each.
    pub fn with_buffering(vcs: usize, depth: usize, flit_bits: usize) -> RouterAreaModel {
        RouterAreaModel {
            buffer_bits_per_edge: vcs * depth * flit_bits,
            ..RouterAreaModel::paper_baseline()
        }
    }

    /// Itemized area along one tile edge.
    pub fn edge_breakdown(&self) -> AreaBreakdown {
        AreaBreakdown {
            buffers_mm2: self.buffer_bits_per_edge as f64 * self.sram_bit_um2 * 1e-6,
            logic_mm2: self.logic_gates_per_edge as f64 * self.gate_um2 * 1e-6,
            xcvr_mm2: self.xcvr_pairs_per_edge as f64 * self.xcvr_um2 * 1e-6,
        }
    }

    /// Router area across all four tile edges, mm².
    pub fn total_mm2(&self) -> f64 {
        4.0 * self.edge_breakdown().total_mm2()
    }

    /// Width of the router strip along a tile edge, µm.
    pub fn strip_width_um(&self, tech: &Technology) -> f64 {
        self.edge_breakdown().total_mm2() / tech.tile_mm * 1000.0
    }

    /// Router area as a fraction of the tile (the paper's 6.6%).
    pub fn fraction_of_tile(&self, tech: &Technology) -> f64 {
        self.total_mm2() / tech.tile_area_mm2()
    }
}

impl Default for RouterAreaModel {
    fn default() -> Self {
        RouterAreaModel::paper_baseline()
    }
}

/// Wiring-track budget for one tile edge.
#[derive(Debug, Clone)]
pub struct WiringBudget {
    /// Signal wires per channel (≈ flit width + control; paper: ~300).
    pub wires_per_channel: usize,
    /// Channels crossing the edge (one per direction).
    pub channels: usize,
    /// Turn paths routed through the tile that also consume edge tracks
    /// (Figure 2's input-to-output connections).
    pub turn_paths: usize,
    /// Differential signaling doubles the wire count.
    pub differential: bool,
    /// Extra tracks for shields, as a fraction of signal tracks.
    pub shield_fraction: f64,
}

impl WiringBudget {
    /// The paper's baseline edge budget.
    pub fn paper_baseline() -> WiringBudget {
        WiringBudget {
            wires_per_channel: 300,
            channels: 2,
            turn_paths: 2,
            differential: true,
            shield_fraction: 0.25,
        }
    }

    /// Tracks used on this edge.
    pub fn tracks_used(&self) -> usize {
        let signals = self.wires_per_channel * (self.channels + self.turn_paths);
        let wires = if self.differential {
            2 * signals
        } else {
            signals
        };
        (wires as f64 * (1.0 + self.shield_fraction)).round() as usize
    }

    /// Fraction of the technology's per-edge tracks consumed.
    pub fn utilization(&self, tech: &Technology) -> f64 {
        self.tracks_used() as f64 / tech.tracks_per_edge as f64
    }
}

impl Default for WiringBudget {
    fn default() -> Self {
        WiringBudget::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_fraction_matches_paper() {
        let m = RouterAreaModel::paper_baseline();
        let t = Technology::dac2001();
        let frac = m.fraction_of_tile(&t);
        // Paper: 0.59 mm², 6.6% of a 9 mm² tile.
        assert!(
            (0.060..=0.070).contains(&frac),
            "area fraction {frac} outside the paper's envelope"
        );
        assert!((m.total_mm2() - 0.59).abs() < 0.05, "{}", m.total_mm2());
    }

    #[test]
    fn strip_fits_in_50_um() {
        let m = RouterAreaModel::paper_baseline();
        let t = Technology::dac2001();
        assert!(m.strip_width_um(&t) < 50.0, "{}", m.strip_width_um(&t));
    }

    #[test]
    fn buffers_dominate_the_area() {
        // Paper: "the area of the router is dominated by buffer space."
        let b = RouterAreaModel::paper_baseline().edge_breakdown();
        assert!(b.buffers_mm2 > b.logic_mm2 + b.xcvr_mm2);
    }

    #[test]
    fn smaller_buffers_shrink_the_router() {
        let base = RouterAreaModel::paper_baseline();
        // Dropping flow control: 1 flit of buffering, 1 "VC".
        let small = RouterAreaModel::with_buffering(1, 1, 300);
        assert!(small.total_mm2() < base.total_mm2() / 2.0);
    }

    #[test]
    fn tracks_used_match_paper() {
        let w = WiringBudget::paper_baseline();
        let t = Technology::dac2001();
        // Paper: "about 3000 of the 6000 available wiring tracks".
        assert_eq!(w.tracks_used(), 3_000);
        assert!((w.utilization(&t) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_ended_narrower_budget() {
        let mut w = WiringBudget::paper_baseline();
        w.differential = false;
        assert_eq!(w.tracks_used(), 1_500);
    }
}
