//! Destination→route translation (paper §2.2).
//!
//! "Local logic can also provide a translation from a destination node to
//! a route." Clients address peers by node id; the per-tile route table
//! holds the precompiled 16-bit source route for every destination, the
//! way boot-time configuration software would program it.

use std::collections::BTreeMap;

use ocin_core::ids::NodeId;
use ocin_core::route::{RouteError, SourceRoute};
use ocin_core::topology::Topology;

/// A per-tile table of precompiled source routes.
#[derive(Debug, Clone)]
pub struct RouteTable {
    src: NodeId,
    /// Ordered by destination id, matching the paper's table layout
    /// and keeping any future dump of the table order-stable.
    routes: BTreeMap<NodeId, SourceRoute>,
}

impl RouteTable {
    /// Compiles routes from `src` to every other node of `topo`.
    ///
    /// # Errors
    ///
    /// Returns the first [`RouteError`] (minimal routes on the shipped
    /// topologies always compile; custom topologies might not).
    pub fn build(topo: &dyn Topology, src: NodeId) -> Result<RouteTable, RouteError> {
        let mut routes = BTreeMap::new();
        for d in 0..topo.num_nodes() {
            let dst = NodeId::new(d as u16);
            if dst == src {
                continue;
            }
            routes.insert(dst, SourceRoute::compile(&topo.route_dirs(src, dst))?);
        }
        Ok(RouteTable { src, routes })
    }

    /// The tile this table serves.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The precompiled route to `dst` (`None` for self or unknown nodes).
    pub fn lookup(&self, dst: NodeId) -> Option<SourceRoute> {
        self.routes.get(&dst).copied()
    }

    /// Number of reachable destinations.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty (single-node network).
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Whether every stored route fits the paper's 16-bit field.
    pub fn fits_paper_field(&self) -> bool {
        self.routes.values().all(SourceRoute::fits_paper_field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocin_core::{FoldedTorus2D, Mesh2D};

    #[test]
    fn table_covers_all_destinations() {
        let topo = FoldedTorus2D::new(4);
        let t = RouteTable::build(&topo, NodeId::new(5)).unwrap();
        assert_eq!(t.len(), 15);
        assert!(t.lookup(NodeId::new(5)).is_none());
        assert!(t.lookup(NodeId::new(0)).is_some());
        assert!(t.fits_paper_field());
    }

    #[test]
    fn routes_walk_to_their_destination() {
        let topo = FoldedTorus2D::new(4);
        let src = NodeId::new(2);
        let t = RouteTable::build(&topo, src).unwrap();
        for d in 0..16u16 {
            let dst = NodeId::new(d);
            let Some(route) = t.lookup(dst) else { continue };
            let mut node = src;
            for dir in route.walk() {
                node = topo.neighbor(node, dir).unwrap();
            }
            assert_eq!(node, dst);
        }
    }

    #[test]
    fn large_mesh_routes_exceed_paper_field() {
        let topo = Mesh2D::new(8);
        let t = RouteTable::build(&topo, NodeId::new(0)).unwrap();
        assert_eq!(t.len(), 63);
        // Corner-to-corner on an 8x8 mesh is 14 hops: beyond 16 bits.
        assert!(!t.fits_paper_field());
    }
}
