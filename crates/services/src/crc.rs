//! CRC-32 (IEEE 802.3) for end-to-end payload checking (paper §2.5).
//!
//! "Modules that required transient fault tolerance could employ
//! end-to-end checking with retry by layering the checking protocol on
//! top of the network interfaces."

/// Computes the CRC-32 (IEEE, reflected, init/xorout `0xFFFF_FFFF`) of
/// `data`.
///
/// ```
/// use ocin_services::crc32;
/// // Standard check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// CRC-32 over a sequence of 64-bit payload words (little-endian bytes).
pub fn crc32_words(words: &[u64]) -> u32 {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    crc32(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32_words(&[0xDEAD_BEEF, 0x1234_5678]);
        for bit in 0..128 {
            let mut words = [0xDEAD_BEEFu64, 0x1234_5678];
            words[bit / 64] ^= 1 << (bit % 64);
            assert_ne!(crc32_words(&words), base, "missed flip at bit {bit}");
        }
    }

    #[test]
    fn word_and_byte_forms_agree() {
        let words = [0x0102_0304_0506_0708u64];
        let bytes = 0x0102_0304_0506_0708u64.to_le_bytes();
        assert_eq!(crc32_words(&words), crc32(&bytes));
    }
}
