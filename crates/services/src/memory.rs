//! A memory read/write service layered on datagrams (paper §2.2).
//!
//! A [`MemoryClient`] on a processor tile issues read and write requests
//! to a [`MemoryServer`] tile, which models a memory subsystem with a
//! fixed access latency and replies over the network. Requests are
//! matched to replies by transaction id, so many can be in flight.

use std::collections::BTreeMap;

use ocin_core::flit::ServiceClass;
use ocin_core::ids::{Cycle, NodeId};
use ocin_core::interface::DeliveredPacket;

use crate::codec::{Header, Message, ServiceKind};

const OP_READ_REQ: u8 = 0;
const OP_WRITE_REQ: u8 = 1;
const OP_READ_REPLY: u8 = 2;
const OP_WRITE_ACK: u8 = 3;

/// A memory operation issued by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryOp {
    /// Read the word at `addr`.
    Read {
        /// Word address.
        addr: u32,
    },
    /// Write `value` to `addr`.
    Write {
        /// Word address.
        addr: u32,
        /// Value to store.
        value: u64,
    },
}

/// A completed memory transaction, as seen by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReply {
    /// Transaction id.
    pub txn: u16,
    /// Address.
    pub addr: u32,
    /// Read data (`None` for write acknowledgements).
    pub data: Option<u64>,
    /// Round-trip latency in cycles.
    pub latency: Cycle,
}

/// The processor-side endpoint.
#[derive(Debug)]
pub struct MemoryClient {
    server: NodeId,
    next_txn: u16,
    outstanding: BTreeMap<u16, Cycle>,
    /// Completed transactions.
    pub completed: Vec<MemoryReply>,
}

impl MemoryClient {
    /// Creates a client talking to the memory at `server`.
    pub fn new(server: NodeId) -> MemoryClient {
        MemoryClient {
            server,
            next_txn: 0,
            outstanding: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// Transactions awaiting replies.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Issues an operation; returns the request message and transaction
    /// id.
    pub fn issue(&mut self, op: MemoryOp, now: Cycle) -> (Message, u16) {
        let txn = self.next_txn;
        self.next_txn = self.next_txn.wrapping_add(1);
        self.outstanding.insert(txn, now);
        let msg = match op {
            MemoryOp::Read { addr } => Message::single_flit(
                self.server,
                Header {
                    service: ServiceKind::Memory,
                    opcode: OP_READ_REQ,
                    seq: txn,
                    aux: addr,
                },
                &[],
                ServiceClass::Bulk,
            ),
            MemoryOp::Write { addr, value } => Message::single_flit(
                self.server,
                Header {
                    service: ServiceKind::Memory,
                    opcode: OP_WRITE_REQ,
                    seq: txn,
                    aux: addr,
                },
                &[value],
                ServiceClass::Bulk,
            ),
        };
        (msg, txn)
    }

    /// Consumes a delivered packet if it is a reply to this client.
    /// Returns the completed transaction, if any.
    pub fn on_packet(&mut self, packet: &DeliveredPacket, now: Cycle) -> Option<MemoryReply> {
        let h = Header::from_payloads(&packet.payloads)?;
        if h.service != ServiceKind::Memory {
            return None;
        }
        let issued = self.outstanding.remove(&h.seq)?;
        let reply = MemoryReply {
            txn: h.seq,
            addr: h.aux,
            data: (h.opcode == OP_READ_REPLY).then(|| packet.payloads[0].0[1]),
            latency: now - issued,
        };
        self.completed.push(reply);
        Some(reply)
    }
}

/// The memory-subsystem tile: services requests after a fixed latency.
#[derive(Debug)]
pub struct MemoryServer {
    store: BTreeMap<u32, u64>,
    access_latency: Cycle,
    /// Requests in service: (ready_cycle, reply_to, header, write value).
    in_service: Vec<(Cycle, NodeId, Header, Option<u64>)>,
    /// Requests served.
    pub requests_served: u64,
}

impl MemoryServer {
    /// Creates a server with the given access latency in cycles.
    pub fn new(access_latency: Cycle) -> MemoryServer {
        MemoryServer {
            store: BTreeMap::new(),
            access_latency,
            in_service: Vec::new(),
            requests_served: 0,
        }
    }

    /// Reads directly (test/debug backdoor).
    pub fn peek(&self, addr: u32) -> u64 {
        self.store.get(&addr).copied().unwrap_or(0)
    }

    /// Accepts a delivered request packet.
    pub fn on_packet(&mut self, packet: &DeliveredPacket, now: Cycle) {
        let Some(h) = Header::from_payloads(&packet.payloads) else {
            return;
        };
        if h.service != ServiceKind::Memory || (h.opcode != OP_READ_REQ && h.opcode != OP_WRITE_REQ)
        {
            return;
        }
        let value = (h.opcode == OP_WRITE_REQ).then(|| packet.payloads[0].0[1]);
        self.in_service
            .push((now + self.access_latency, packet.src, h, value));
    }

    /// Emits replies whose access latency has elapsed.
    pub fn poll(&mut self, now: Cycle) -> Vec<Message> {
        let mut out = Vec::new();
        let mut remaining = Vec::with_capacity(self.in_service.len());
        let in_service = std::mem::take(&mut self.in_service);
        for (ready, client, h, value) in in_service {
            if ready > now {
                remaining.push((ready, client, h, value));
                continue;
            }
            self.requests_served += 1;
            let reply = if let Some(v) = value {
                self.store.insert(h.aux, v);
                Message::single_flit(
                    client,
                    Header {
                        opcode: OP_WRITE_ACK,
                        ..h
                    },
                    &[],
                    ServiceClass::Bulk,
                )
            } else {
                let data = self.peek(h.aux);
                Message::single_flit(
                    client,
                    Header {
                        opcode: OP_READ_REPLY,
                        ..h
                    },
                    &[data],
                    ServiceClass::Bulk,
                )
            };
            out.push(reply);
        }
        self.in_service = remaining;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocin_core::ids::PacketId;

    fn deliver(msg: &Message, src: NodeId, now: Cycle) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(0),
            src,
            dst: msg.dst,
            class: msg.class,
            flow: None,
            created_at: now,
            injected_at: now,
            delivered_at: now,
            num_flits: msg.payloads.len(),
            payloads: msg.payloads.clone(),
            corrupted: false,
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut client = MemoryClient::new(8.into());
        let mut server = MemoryServer::new(4);

        // Write 0xFEED to address 0x10.
        let (wmsg, _) = client.issue(
            MemoryOp::Write {
                addr: 0x10,
                value: 0xFEED,
            },
            0,
        );
        server.on_packet(&deliver(&wmsg, 2.into(), 3), 3);
        assert!(server.poll(5).is_empty(), "latency not yet elapsed");
        let replies = server.poll(7);
        assert_eq!(replies.len(), 1);
        let ack = client
            .on_packet(&deliver(&replies[0], 8.into(), 10), 10)
            .unwrap();
        assert_eq!(ack.data, None);
        assert_eq!(ack.latency, 10);

        // Read it back.
        let (rmsg, txn) = client.issue(MemoryOp::Read { addr: 0x10 }, 20);
        server.on_packet(&deliver(&rmsg, 2.into(), 22), 22);
        let replies = server.poll(26);
        assert_eq!(replies.len(), 1);
        let got = client
            .on_packet(&deliver(&replies[0], 8.into(), 28), 28)
            .unwrap();
        assert_eq!(got.txn, txn);
        assert_eq!(got.data, Some(0xFEED));
        assert_eq!(got.latency, 8);
        assert_eq!(client.outstanding(), 0);
        assert_eq!(server.requests_served, 2);
    }

    #[test]
    fn unknown_address_reads_zero() {
        let mut client = MemoryClient::new(1.into());
        let mut server = MemoryServer::new(0);
        let (rmsg, _) = client.issue(MemoryOp::Read { addr: 999 }, 0);
        server.on_packet(&deliver(&rmsg, 0.into(), 0), 0);
        let replies = server.poll(0);
        let got = client
            .on_packet(&deliver(&replies[0], 1.into(), 1), 1)
            .unwrap();
        assert_eq!(got.data, Some(0));
    }

    #[test]
    fn multiple_outstanding_transactions() {
        let mut client = MemoryClient::new(1.into());
        let mut server = MemoryServer::new(2);
        let mut msgs = Vec::new();
        for i in 0..5u32 {
            let (m, _) = client.issue(
                MemoryOp::Write {
                    addr: i,
                    value: i as u64 * 10,
                },
                0,
            );
            msgs.push(m);
        }
        assert_eq!(client.outstanding(), 5);
        for m in &msgs {
            server.on_packet(&deliver(m, 0.into(), 1), 1);
        }
        for r in server.poll(10) {
            client.on_packet(&deliver(&r, 1.into(), 12), 12);
        }
        assert_eq!(client.outstanding(), 0);
        assert_eq!(client.completed.len(), 5);
        for i in 0..5u32 {
            assert_eq!(server.peek(i), i as u64 * 10);
        }
    }

    #[test]
    fn foreign_packets_are_ignored() {
        let mut client = MemoryClient::new(1.into());
        let mut server = MemoryServer::new(0);
        // A logical-wire packet must not disturb either side.
        let mut tx = crate::logical_wire::LogicalWireTx::new(1.into(), 0, 8);
        let m = tx.observe(1).unwrap();
        server.on_packet(&deliver(&m, 0.into(), 0), 0);
        assert!(server.poll(10).is_empty());
        assert!(client.on_packet(&deliver(&m, 1.into(), 0), 0).is_none());
    }
}
