//! # ocin-services — protocols layered on the datagram interface
//!
//! The paper's §2.2: "higher level protocols can be layered on top of the
//! simple interface. ... this local logic could present a memory
//! read/write service, a flow-controlled data stream, or a logical wire
//! to the client."
//!
//! Every service here is a *sans-I/O* state machine: it produces
//! [`Message`]s to inject and consumes `ocin_core::DeliveredPacket`s,
//! leaving the actual network plumbing to `ocin-sim` (or any other
//! driver). This mirrors the paper's placement of the logic "local to the
//! network clients".
//!
//! * [`LogicalWireTx`]/[`LogicalWireRx`] — §2.2's worked example: an
//!   8-bit wire bundle whose state changes are carried as single-flit
//!   packets.
//! * [`MemoryClient`]/[`MemoryServer`] — a read/write request–reply
//!   service.
//! * [`StreamSender`]/[`StreamReceiver`] — a flow-controlled data stream
//!   with end-to-end credits.
//! * [`ReliableSender`]/[`ReliableReceiver`] — §2.5's "end-to-end
//!   checking with retry": CRC-32 over the payload, sequence numbers,
//!   acknowledgements, and timeout retransmission.

pub mod codec;
pub mod crc;
pub mod gateway;
pub mod logical_wire;
pub mod memory;
pub mod retry;
pub mod route_table;
pub mod stream;

pub use codec::{Header, Message, ServiceKind};
pub use crc::crc32;
pub use gateway::{GatewayDatagram, GatewayEndpoint, GlobalAddress};
pub use logical_wire::{LogicalWireRx, LogicalWireTx};
pub use memory::{MemoryClient, MemoryOp, MemoryReply, MemoryServer};
pub use retry::{ReliableReceiver, ReliableSender, RetryConfig};
pub use route_table::RouteTable;
pub use stream::{StreamReceiver, StreamSender};
