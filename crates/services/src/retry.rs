//! End-to-end checking with retry (paper §2.5).
//!
//! "Modules that required transient fault tolerance could employ
//! end-to-end checking with retry by layering the checking protocol on
//! top of the network interfaces."
//!
//! [`ReliableSender`] stamps each datagram with a sequence number and a
//! CRC-32 of its data, keeps a copy until acknowledged, and retransmits
//! on timeout. [`ReliableReceiver`] verifies the CRC, acknowledges good
//! data (re-acknowledging duplicates), and discards corrupt packets so
//! the sender's timeout recovers them. This restores reliable delivery
//! over both transient link faults and dropping flow control.

use std::collections::{BTreeMap, VecDeque};

use ocin_core::flit::ServiceClass;
use ocin_core::ids::{Cycle, NodeId};
use ocin_core::interface::DeliveredPacket;

use crate::codec::{Header, Message, ServiceKind};
use crate::crc::crc32_words;

/// The end-to-end check covers the sequence number and channel id as
/// well as the data, so header upsets are also caught and retried.
fn header_aware_crc(channel: u8, seq: u16, data: &[u64]) -> u32 {
    let mut words = Vec::with_capacity(data.len() + 1);
    words.push((channel as u64) << 16 | seq as u64);
    words.extend_from_slice(data);
    crc32_words(&words)
}

const OP_DATA: u8 = 0;
const OP_ACK: u8 = 1;

/// Retry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Cycles to wait for an acknowledgement before retransmitting.
    pub timeout: Cycle,
    /// Maximum unacknowledged packets in flight.
    pub window: usize,
    /// Give up after this many transmissions of one packet (0 = never).
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            timeout: 200,
            window: 8,
            max_attempts: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    data: Vec<u64>,
    sent_at: Cycle,
    attempts: u32,
}

/// The sending half of a reliable channel.
#[derive(Debug)]
pub struct ReliableSender {
    dst: NodeId,
    channel: u8,
    cfg: RetryConfig,
    next_seq: u16,
    queue: VecDeque<Vec<u64>>,
    in_flight: BTreeMap<u16, InFlight>,
    /// Packets retransmitted.
    pub retransmissions: u64,
    /// Packets abandoned after `max_attempts`.
    pub abandoned: u64,
    /// Packets acknowledged.
    pub acknowledged: u64,
}

impl ReliableSender {
    /// Creates a sender on logical channel `channel` to `dst`.
    pub fn new(dst: NodeId, channel: u8, cfg: RetryConfig) -> ReliableSender {
        ReliableSender {
            dst,
            channel,
            cfg,
            next_seq: 0,
            queue: VecDeque::new(),
            in_flight: BTreeMap::new(),
            retransmissions: 0,
            abandoned: 0,
            acknowledged: 0,
        }
    }

    /// Queues a datagram (up to 2 data words; word 3 carries the CRC).
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds 2 words.
    pub fn send(&mut self, data: Vec<u64>) {
        assert!(data.len() <= 2, "reliable datagrams carry up to 2 words");
        self.queue.push_back(data);
    }

    /// Unacknowledged + unqueued work remaining.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// Emits transmissions and retransmissions due at `now`.
    pub fn poll(&mut self, now: Cycle) -> Vec<Message> {
        let mut out = Vec::new();
        // Retransmit timeouts.
        let mut expired: Vec<u16> = Vec::new();
        for (&seq, inf) in &self.in_flight {
            if now >= inf.sent_at + self.cfg.timeout {
                expired.push(seq);
            }
        }
        for seq in expired {
            let give_up = {
                let inf = self.in_flight.get_mut(&seq).expect("expired entry");
                self.cfg.max_attempts != 0 && inf.attempts >= self.cfg.max_attempts
            };
            if give_up {
                self.in_flight.remove(&seq);
                self.abandoned += 1;
                continue;
            }
            let inf = self.in_flight.get_mut(&seq).expect("expired entry");
            inf.sent_at = now;
            inf.attempts += 1;
            self.retransmissions += 1;
            out.push(Self::data_message(self.dst, self.channel, seq, &inf.data));
        }
        // New transmissions within the window.
        while self.in_flight.len() < self.cfg.window {
            let Some(data) = self.queue.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            out.push(Self::data_message(self.dst, self.channel, seq, &data));
            self.in_flight.insert(
                seq,
                InFlight {
                    data,
                    sent_at: now,
                    attempts: 1,
                },
            );
        }
        out
    }

    fn data_message(dst: NodeId, channel: u8, seq: u16, data: &[u64]) -> Message {
        let crc = header_aware_crc(channel, seq, data);
        let mut words = data.to_vec();
        words.push(crc as u64);
        Message::single_flit(
            dst,
            Header {
                service: ServiceKind::Reliable,
                opcode: OP_DATA,
                seq,
                aux: (channel as u32) << 8 | data.len() as u32,
            },
            &words,
            ServiceClass::Bulk,
        )
    }

    /// Consumes an acknowledgement.
    pub fn on_packet(&mut self, packet: &DeliveredPacket) -> bool {
        let Some(h) = Header::from_payloads(&packet.payloads) else {
            return false;
        };
        if h.service != ServiceKind::Reliable
            || h.opcode != OP_ACK
            || (h.aux >> 8) as u8 != self.channel
        {
            return false;
        }
        if self.in_flight.remove(&h.seq).is_some() {
            self.acknowledged += 1;
        }
        true
    }
}

/// The receiving half of a reliable channel.
#[derive(Debug)]
pub struct ReliableReceiver {
    src: NodeId,
    channel: u8,
    seen: BTreeMap<u16, ()>,
    delivered: VecDeque<Vec<u64>>,
    /// Packets whose CRC failed (dropped; sender's timeout recovers).
    pub crc_failures: u64,
    /// Duplicate transmissions re-acknowledged.
    pub duplicates: u64,
}

impl ReliableReceiver {
    /// Creates a receiver for channel `channel` from `src`.
    pub fn new(src: NodeId, channel: u8) -> ReliableReceiver {
        ReliableReceiver {
            src,
            channel,
            seen: BTreeMap::new(),
            delivered: VecDeque::new(),
            crc_failures: 0,
            duplicates: 0,
        }
    }

    /// Consumes a data packet; returns the acknowledgement to send, if
    /// the packet passed its CRC.
    pub fn on_packet(&mut self, packet: &DeliveredPacket) -> Option<Message> {
        let h = Header::from_payloads(&packet.payloads)?;
        if h.service != ServiceKind::Reliable
            || h.opcode != OP_DATA
            || (h.aux >> 8) as u8 != self.channel
        {
            return None;
        }
        let n = (h.aux & 0xFF) as usize;
        if n > 2 {
            // A corrupted length field; treat as a check failure.
            self.crc_failures += 1;
            return None;
        }
        let words = Message::extract_data(&packet.payloads, n + 1);
        let (data, crc) = words.split_at(n);
        if header_aware_crc(self.channel, h.seq, data) as u64 != crc[0] {
            self.crc_failures += 1;
            return None; // silent drop; the sender will retry
        }
        if self.seen.insert(h.seq, ()).is_some() {
            self.duplicates += 1;
        } else {
            self.delivered.push_back(data.to_vec());
        }
        Some(Message::single_flit(
            self.src,
            Header {
                service: ServiceKind::Reliable,
                opcode: OP_ACK,
                seq: h.seq,
                aux: (self.channel as u32) << 8,
            },
            &[],
            ServiceClass::Priority,
        ))
    }

    /// Drains datagrams delivered exactly once, in arrival order.
    pub fn drain(&mut self) -> Vec<Vec<u64>> {
        self.delivered.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocin_core::flit::Payload;
    use ocin_core::ids::PacketId;

    fn deliver(msg: &Message, src: NodeId) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(0),
            src,
            dst: msg.dst,
            class: msg.class,
            flow: None,
            created_at: 0,
            injected_at: 0,
            delivered_at: 0,
            num_flits: msg.payloads.len(),
            payloads: msg.payloads.clone(),
            corrupted: false,
        }
    }

    fn pair() -> (ReliableSender, ReliableReceiver) {
        (
            ReliableSender::new(1.into(), 0, RetryConfig::default()),
            ReliableReceiver::new(0.into(), 0),
        )
    }

    #[test]
    fn clean_channel_delivers_once() {
        let (mut tx, mut rx) = pair();
        tx.send(vec![0xAA, 0xBB]);
        let msgs = tx.poll(0);
        assert_eq!(msgs.len(), 1);
        let ack = rx.on_packet(&deliver(&msgs[0], 0.into())).unwrap();
        assert!(tx.on_packet(&deliver(&ack, 1.into())));
        assert_eq!(rx.drain(), vec![vec![0xAA, 0xBB]]);
        assert_eq!(tx.pending(), 0);
        assert_eq!(tx.acknowledged, 1);
        assert_eq!(tx.retransmissions, 0);
    }

    #[test]
    fn lost_packet_is_retransmitted() {
        let (mut tx, mut rx) = pair();
        tx.send(vec![7]);
        let first = tx.poll(0);
        assert_eq!(first.len(), 1);
        // The packet is lost; nothing reaches rx. Timeout expires:
        assert!(tx.poll(100).is_empty(), "not yet timed out");
        let retry = tx.poll(200);
        assert_eq!(retry.len(), 1);
        assert_eq!(tx.retransmissions, 1);
        let ack = rx.on_packet(&deliver(&retry[0], 0.into())).unwrap();
        tx.on_packet(&deliver(&ack, 1.into()));
        assert_eq!(rx.drain(), vec![vec![7]]);
    }

    #[test]
    fn corrupt_packet_is_dropped_and_recovered() {
        let (mut tx, mut rx) = pair();
        tx.send(vec![0x1234]);
        let msgs = tx.poll(0);
        // Corrupt a payload bit in flight.
        let mut bad = deliver(&msgs[0], 0.into());
        let mut p: Payload = bad.payloads[0];
        p.flip_bit(70);
        bad.payloads[0] = p;
        assert!(rx.on_packet(&bad).is_none());
        assert_eq!(rx.crc_failures, 1);
        assert!(rx.drain().is_empty());
        // Retransmission succeeds.
        let retry = tx.poll(500);
        assert_eq!(retry.len(), 1);
        let ack = rx.on_packet(&deliver(&retry[0], 0.into())).unwrap();
        tx.on_packet(&deliver(&ack, 1.into()));
        assert_eq!(rx.drain(), vec![vec![0x1234]]);
    }

    #[test]
    fn duplicates_are_reacked_but_delivered_once() {
        let (mut tx, mut rx) = pair();
        tx.send(vec![9]);
        let msgs = tx.poll(0);
        let d = deliver(&msgs[0], 0.into());
        let ack1 = rx.on_packet(&d).unwrap();
        // The ack is lost; sender retries; receiver sees a duplicate.
        let retry = tx.poll(300);
        let ack2 = rx.on_packet(&deliver(&retry[0], 0.into())).unwrap();
        assert_eq!(rx.duplicates, 1);
        assert_eq!(rx.drain(), vec![vec![9]]);
        tx.on_packet(&deliver(&ack1, 1.into()));
        tx.on_packet(&deliver(&ack2, 1.into()));
        assert_eq!(tx.pending(), 0);
    }

    #[test]
    fn window_limits_in_flight() {
        let mut tx = ReliableSender::new(
            1.into(),
            0,
            RetryConfig {
                window: 2,
                ..RetryConfig::default()
            },
        );
        for i in 0..5u64 {
            tx.send(vec![i]);
        }
        assert_eq!(tx.poll(0).len(), 2);
        assert_eq!(tx.pending(), 5);
    }

    #[test]
    fn max_attempts_abandons() {
        let mut tx = ReliableSender::new(
            1.into(),
            0,
            RetryConfig {
                timeout: 10,
                window: 1,
                max_attempts: 2,
            },
        );
        tx.send(vec![1]);
        assert_eq!(tx.poll(0).len(), 1); // attempt 1
        assert_eq!(tx.poll(10).len(), 1); // attempt 2
        assert_eq!(tx.poll(20).len(), 0); // abandoned
        assert_eq!(tx.abandoned, 1);
        assert_eq!(tx.pending(), 0);
    }
}
