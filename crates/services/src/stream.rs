//! A flow-controlled data stream over datagrams (paper §2.2).
//!
//! End-to-end credits keep the sender from overrunning the receiver: the
//! receiver grants credits as its client consumes words, and the sender
//! only transmits while it holds credit. Per-VC in-order delivery of the
//! underlying network keeps the stream ordered.

use std::collections::VecDeque;

use ocin_core::flit::ServiceClass;
use ocin_core::ids::NodeId;
use ocin_core::interface::DeliveredPacket;

use crate::codec::{Header, Message, ServiceKind};

const OP_DATA: u8 = 0;
const OP_CREDIT: u8 = 1;

/// The sending endpoint of a stream.
#[derive(Debug)]
pub struct StreamSender {
    dst: NodeId,
    stream: u8,
    credits: u32,
    seq: u16,
    queue: VecDeque<u64>,
    /// Words transmitted.
    pub words_sent: u64,
}

impl StreamSender {
    /// Creates a sender with an initial credit window of `initial_credits`
    /// words.
    pub fn new(dst: NodeId, stream: u8, initial_credits: u32) -> StreamSender {
        StreamSender {
            dst,
            stream,
            credits: initial_credits,
            seq: 0,
            queue: VecDeque::new(),
            words_sent: 0,
        }
    }

    /// Queues words for transmission.
    pub fn offer(&mut self, words: impl IntoIterator<Item = u64>) {
        self.queue.extend(words);
    }

    /// Words waiting for credit.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Current credit balance.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Emits the next data packet if credit and data are available
    /// (up to 3 words per single-flit packet).
    pub fn poll(&mut self) -> Option<Message> {
        if self.queue.is_empty() || self.credits == 0 {
            return None;
        }
        let n = self.queue.len().min(self.credits as usize).min(3);
        let words: Vec<u64> = self.queue.drain(..n).collect();
        self.credits -= n as u32;
        self.seq = self.seq.wrapping_add(1);
        self.words_sent += n as u64;
        Some(Message::single_flit(
            self.dst,
            Header {
                service: ServiceKind::Stream,
                opcode: OP_DATA,
                seq: self.seq,
                aux: (self.stream as u32) << 8 | n as u32,
            },
            &words,
            ServiceClass::Bulk,
        ))
    }

    /// Consumes a credit grant addressed to this stream.
    pub fn on_packet(&mut self, packet: &DeliveredPacket) -> bool {
        let Some(h) = Header::from_payloads(&packet.payloads) else {
            return false;
        };
        if h.service != ServiceKind::Stream
            || h.opcode != OP_CREDIT
            || (h.aux >> 8) as u8 != self.stream
        {
            return false;
        }
        self.credits += h.aux & 0xFF;
        true
    }
}

/// The receiving endpoint of a stream.
#[derive(Debug)]
pub struct StreamReceiver {
    src: NodeId,
    stream: u8,
    buffer: VecDeque<u64>,
    capacity: u32,
    pending_credits: u32,
    /// Words received in order.
    pub words_received: u64,
}

impl StreamReceiver {
    /// Creates a receiver buffering up to `capacity` words from `src`.
    /// `capacity` must equal the sender's initial credit window.
    pub fn new(src: NodeId, stream: u8, capacity: u32) -> StreamReceiver {
        StreamReceiver {
            src,
            stream,
            buffer: VecDeque::new(),
            capacity,
            pending_credits: 0,
            words_received: 0,
        }
    }

    /// Consumes a data packet for this stream.
    pub fn on_packet(&mut self, packet: &DeliveredPacket) -> bool {
        let Some(h) = Header::from_payloads(&packet.payloads) else {
            return false;
        };
        if h.service != ServiceKind::Stream
            || h.opcode != OP_DATA
            || (h.aux >> 8) as u8 != self.stream
        {
            return false;
        }
        let n = (h.aux & 0xFF) as usize;
        debug_assert!(
            self.buffer.len() + n <= self.capacity as usize,
            "sender violated the credit window"
        );
        for w in Message::extract_data(&packet.payloads, n) {
            self.buffer.push_back(w);
        }
        self.words_received += n as u64;
        true
    }

    /// The client reads buffered words, freeing credit.
    pub fn read(&mut self, max_words: usize) -> Vec<u64> {
        let n = self.buffer.len().min(max_words);
        let words: Vec<u64> = self.buffer.drain(..n).collect();
        self.pending_credits += n as u32;
        words
    }

    /// Emits a credit grant if the client has freed buffer space.
    pub fn poll_credits(&mut self) -> Option<Message> {
        if self.pending_credits == 0 {
            return None;
        }
        let grant = self.pending_credits.min(0xFF);
        self.pending_credits -= grant;
        Some(Message::single_flit(
            self.src,
            Header {
                service: ServiceKind::Stream,
                opcode: OP_CREDIT,
                seq: 0,
                aux: (self.stream as u32) << 8 | grant,
            },
            &[],
            ServiceClass::Priority,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocin_core::ids::PacketId;

    fn deliver(msg: &Message, src: NodeId) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(0),
            src,
            dst: msg.dst,
            class: msg.class,
            flow: None,
            created_at: 0,
            injected_at: 0,
            delivered_at: 0,
            num_flits: msg.payloads.len(),
            payloads: msg.payloads.clone(),
            corrupted: false,
        }
    }

    #[test]
    fn data_flows_within_the_credit_window() {
        let mut tx = StreamSender::new(1.into(), 0, 6);
        let mut rx = StreamReceiver::new(0.into(), 0, 6);
        tx.offer(0..10u64);
        // 6 credits = two 3-word packets.
        let m1 = tx.poll().unwrap();
        let m2 = tx.poll().unwrap();
        assert!(tx.poll().is_none(), "out of credit");
        assert_eq!(tx.backlog(), 4);
        assert!(rx.on_packet(&deliver(&m1, 0.into())));
        assert!(rx.on_packet(&deliver(&m2, 0.into())));
        assert_eq!(rx.read(100), (0..6u64).collect::<Vec<_>>());
    }

    #[test]
    fn credits_restart_the_sender() {
        let mut tx = StreamSender::new(1.into(), 0, 3);
        let mut rx = StreamReceiver::new(0.into(), 0, 3);
        tx.offer(0..6u64);
        let m1 = tx.poll().unwrap();
        assert!(tx.poll().is_none());
        rx.on_packet(&deliver(&m1, 0.into()));
        assert_eq!(rx.read(3), vec![0, 1, 2]);
        let credit = rx.poll_credits().unwrap();
        assert!(rx.poll_credits().is_none());
        assert!(tx.on_packet(&deliver(&credit, 1.into())));
        let m2 = tx.poll().unwrap();
        rx.on_packet(&deliver(&m2, 0.into()));
        assert_eq!(rx.read(3), vec![3, 4, 5]);
        assert_eq!(tx.words_sent, 6);
        assert_eq!(rx.words_received, 6);
    }

    #[test]
    fn streams_are_isolated_by_id() {
        let mut tx = StreamSender::new(1.into(), 1, 3);
        let mut rx = StreamReceiver::new(0.into(), 2, 3);
        tx.offer([42]);
        let m = tx.poll().unwrap();
        assert!(!rx.on_packet(&deliver(&m, 0.into())));
    }
}
