//! Shared message framing for the layered services.
//!
//! Every service packet reserves payload word 0 as a header; words 1–3
//! carry service data. The header identifies the service, an opcode, a
//! sequence number, and a 32-bit auxiliary field (address, credit count,
//! CRC, ...).

use ocin_core::flit::{Payload, ServiceClass};
use ocin_core::ids::NodeId;

/// Which service a packet belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Logical-wire updates.
    LogicalWire,
    /// Memory read/write requests and replies.
    Memory,
    /// Flow-controlled streams.
    Stream,
    /// Reliable-delivery data and acknowledgements.
    Reliable,
    /// Inter-chip gateway encapsulation.
    Gateway,
}

impl ServiceKind {
    const fn id(self) -> u8 {
        match self {
            ServiceKind::LogicalWire => 1,
            ServiceKind::Memory => 2,
            ServiceKind::Stream => 3,
            ServiceKind::Reliable => 4,
            ServiceKind::Gateway => 5,
        }
    }

    const fn from_id(id: u8) -> Option<ServiceKind> {
        match id {
            1 => Some(ServiceKind::LogicalWire),
            2 => Some(ServiceKind::Memory),
            3 => Some(ServiceKind::Stream),
            4 => Some(ServiceKind::Reliable),
            5 => Some(ServiceKind::Gateway),
            _ => None,
        }
    }
}

/// The decoded word-0 header of a service packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Owning service.
    pub service: ServiceKind,
    /// Service-specific opcode.
    pub opcode: u8,
    /// Sequence number.
    pub seq: u16,
    /// Service-specific auxiliary field.
    pub aux: u32,
}

impl Header {
    /// Packs the header into a payload word.
    pub fn pack(&self) -> u64 {
        (self.service.id() as u64)
            | (self.opcode as u64) << 8
            | (self.seq as u64) << 16
            | (self.aux as u64) << 32
    }

    /// Decodes a payload word; `None` if the service id is unknown.
    pub fn unpack(word: u64) -> Option<Header> {
        Some(Header {
            service: ServiceKind::from_id(word as u8)?,
            opcode: (word >> 8) as u8,
            seq: (word >> 16) as u16,
            aux: (word >> 32) as u32,
        })
    }

    /// Reads the header from a delivered packet's first payload word.
    pub fn from_payloads(payloads: &[Payload]) -> Option<Header> {
        payloads.first().and_then(|p| Header::unpack(p.0[0]))
    }
}

/// A packet a service asks its driver to inject.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Destination tile.
    pub dst: NodeId,
    /// Payload contents, one entry per flit.
    pub payloads: Vec<Payload>,
    /// Valid payload bits.
    pub payload_bits: usize,
    /// Service class to inject with.
    pub class: ServiceClass,
}

impl Message {
    /// Builds a single-flit message with the given header and data words.
    ///
    /// # Panics
    ///
    /// Panics if more than three data words are supplied.
    pub fn single_flit(dst: NodeId, header: Header, data: &[u64], class: ServiceClass) -> Message {
        assert!(data.len() <= 3, "one flit holds a header plus 3 data words");
        let mut p = Payload::ZERO;
        p.0[0] = header.pack();
        for (i, &w) in data.iter().enumerate() {
            p.0[i + 1] = w;
        }
        Message {
            dst,
            payloads: vec![p],
            payload_bits: 64 * (1 + data.len()),
            class,
        }
    }

    /// Builds a multi-flit message: flit 0 carries the header plus up to
    /// three data words; further data words fill subsequent flits.
    pub fn multi_flit(dst: NodeId, header: Header, data: &[u64], class: ServiceClass) -> Message {
        if data.len() <= 3 {
            return Message::single_flit(dst, header, data, class);
        }
        let mut payloads = Vec::new();
        let mut first = Payload::ZERO;
        first.0[0] = header.pack();
        first.0[1..4].copy_from_slice(&data[..3]);
        payloads.push(first);
        for chunk in data[3..].chunks(4) {
            let mut p = Payload::ZERO;
            p.0[..chunk.len()].copy_from_slice(chunk);
            payloads.push(p);
        }
        let payload_bits = 64 * (1 + data.len());
        Message {
            dst,
            payloads,
            payload_bits,
            class,
        }
    }

    /// Extracts the data words of a message built by
    /// [`Message::multi_flit`], given the expected count.
    pub fn extract_data(payloads: &[Payload], count: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(count);
        for (i, p) in payloads.iter().enumerate() {
            let start = if i == 0 { 1 } else { 0 };
            for w in start..4 {
                if out.len() < count {
                    out.push(p.0[w]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            service: ServiceKind::Memory,
            opcode: 3,
            seq: 0xBEEF,
            aux: 0xDEAD_CAFE,
        };
        assert_eq!(Header::unpack(h.pack()), Some(h));
    }

    #[test]
    fn unknown_service_rejected() {
        assert_eq!(Header::unpack(0xFF), None);
    }

    #[test]
    fn single_flit_message_layout() {
        let h = Header {
            service: ServiceKind::LogicalWire,
            opcode: 0,
            seq: 1,
            aux: 0,
        };
        let m = Message::single_flit(5.into(), h, &[0xAB, 0xCD], ServiceClass::Priority);
        assert_eq!(m.payloads.len(), 1);
        assert_eq!(m.payload_bits, 192);
        assert_eq!(Header::from_payloads(&m.payloads), Some(h));
        assert_eq!(m.payloads[0].0[1], 0xAB);
        assert_eq!(m.payloads[0].0[2], 0xCD);
    }

    #[test]
    fn multi_flit_roundtrip() {
        let h = Header {
            service: ServiceKind::Stream,
            opcode: 1,
            seq: 9,
            aux: 42,
        };
        let data: Vec<u64> = (0..10).map(|i| 0x100 + i).collect();
        let m = Message::multi_flit(3.into(), h, &data, ServiceClass::Bulk);
        // 1 header word + 10 data = 11 words -> flit0 holds 4, then 4, 3.
        assert_eq!(m.payloads.len(), 3);
        assert_eq!(m.payload_bits, 64 * 11);
        assert_eq!(Message::extract_data(&m.payloads, 10), data);
    }

    #[test]
    fn small_multi_flit_degenerates_to_single() {
        let h = Header {
            service: ServiceKind::Reliable,
            opcode: 0,
            seq: 0,
            aux: 0,
        };
        let m = Message::multi_flit(1.into(), h, &[7], ServiceClass::Bulk);
        assert_eq!(m.payloads.len(), 1);
    }
}
