//! Logical wires over the network — the paper's §2.2 worked example.
//!
//! "Suppose tile *i* has a bundle of N=8 wires that should be logically
//! connected to tile *j*. The local logic monitors these wires for
//! changes in their state. Whenever the state changes, the logic
//! arbitrates for access to the network input port, possibly interrupting
//! a lower priority packet injection, and injects a single flit packet
//! with data size 16, an appropriate virtual channel mask, and destination
//! of tile *j*. Eight of the 16 data bits hold the state of the lines
//! while the remaining data bits identify this flit as containing logical
//! wires."

use ocin_core::flit::ServiceClass;
use ocin_core::ids::{Cycle, NodeId};
use ocin_core::interface::DeliveredPacket;

use crate::codec::{Header, Message, ServiceKind};

/// The transmit side: monitors a wire bundle and emits updates.
#[derive(Debug, Clone)]
pub struct LogicalWireTx {
    dst: NodeId,
    /// Identifies this bundle at the receiver (several bundles may share
    /// a tile pair).
    bundle: u8,
    last_sent: Option<u64>,
    width: u32,
    seq: u16,
    /// Updates emitted so far.
    pub updates_sent: u64,
}

impl LogicalWireTx {
    /// Creates a transmitter for a `width`-bit bundle (≤ 64) to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(dst: NodeId, bundle: u8, width: u32) -> LogicalWireTx {
        assert!((1..=64).contains(&width), "bundle width 1..=64");
        LogicalWireTx {
            dst,
            bundle,
            last_sent: None,
            width,
            seq: 0,
            updates_sent: 0,
        }
    }

    /// Observes the bundle's current state; returns an update message if
    /// the state changed since the last transmission.
    ///
    /// Updates ride the priority class so the emulated wire stays fast
    /// under bulk load (the paper's "possibly interrupting a lower
    /// priority packet injection").
    pub fn observe(&mut self, state: u64) -> Option<Message> {
        let state = state & mask(self.width);
        if self.last_sent == Some(state) {
            return None;
        }
        self.last_sent = Some(state);
        self.seq = self.seq.wrapping_add(1);
        self.updates_sent += 1;
        let header = Header {
            service: ServiceKind::LogicalWire,
            opcode: self.bundle,
            seq: self.seq,
            aux: self.width,
        };
        Some(Message::single_flit(
            self.dst,
            header,
            &[state],
            ServiceClass::Priority,
        ))
    }
}

/// The receive side: reconstructs the bundle's state at the remote tile.
#[derive(Debug, Clone)]
pub struct LogicalWireRx {
    bundle: u8,
    state: u64,
    last_seq: u16,
    /// Cycle of the most recent update, for latency measurement.
    pub last_update_at: Option<Cycle>,
    /// Updates applied.
    pub updates_applied: u64,
}

impl LogicalWireRx {
    /// Creates a receiver for bundle id `bundle`.
    pub fn new(bundle: u8) -> LogicalWireRx {
        LogicalWireRx {
            bundle,
            state: 0,
            last_seq: 0,
            last_update_at: None,
            updates_applied: 0,
        }
    }

    /// The current reconstructed wire state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Consumes a delivered packet if it is an update for this bundle.
    /// Returns `true` when the state was updated.
    pub fn on_packet(&mut self, packet: &DeliveredPacket, now: Cycle) -> bool {
        let Some(h) = Header::from_payloads(&packet.payloads) else {
            return false;
        };
        if h.service != ServiceKind::LogicalWire || h.opcode != self.bundle {
            return false;
        }
        // Stale updates (reordered across VCs) are dropped; sequence
        // numbers are small so use wrapping distance.
        let age = h.seq.wrapping_sub(self.last_seq);
        if age == 0 || age > u16::MAX / 2 {
            return false;
        }
        self.last_seq = h.seq;
        self.state = packet.payloads[0].0[1] & mask(h.aux);
        self.last_update_at = Some(now);
        self.updates_applied += 1;
        true
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use ocin_core::ids::PacketId;

    fn deliver(msg: &Message, now: Cycle) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(1),
            src: 0.into(),
            dst: msg.dst,
            class: msg.class,
            flow: None,
            created_at: now,
            injected_at: now,
            delivered_at: now,
            num_flits: msg.payloads.len(),
            payloads: msg.payloads.clone(),
            corrupted: false,
        }
    }

    #[test]
    fn only_changes_are_transmitted() {
        let mut tx = LogicalWireTx::new(3.into(), 0, 8);
        assert!(tx.observe(0xAB).is_some());
        assert!(tx.observe(0xAB).is_none());
        assert!(tx.observe(0xAC).is_some());
        assert_eq!(tx.updates_sent, 2);
    }

    #[test]
    fn state_is_reconstructed_remotely() {
        let mut tx = LogicalWireTx::new(3.into(), 7, 8);
        let mut rx = LogicalWireRx::new(7);
        let m = tx.observe(0x5A).unwrap();
        assert!(rx.on_packet(&deliver(&m, 10), 10));
        assert_eq!(rx.state(), 0x5A);
        assert_eq!(rx.last_update_at, Some(10));
    }

    #[test]
    fn width_masks_extra_bits() {
        let mut tx = LogicalWireTx::new(1.into(), 0, 8);
        let mut rx = LogicalWireRx::new(0);
        let m = tx.observe(0xFFFF).unwrap();
        rx.on_packet(&deliver(&m, 0), 0);
        assert_eq!(rx.state(), 0xFF);
        // The masked state is what dedup compares against.
        assert!(tx.observe(0x100FF).is_none());
    }

    #[test]
    fn wrong_bundle_is_ignored() {
        let mut tx = LogicalWireTx::new(1.into(), 2, 8);
        let mut rx = LogicalWireRx::new(3);
        let m = tx.observe(1).unwrap();
        assert!(!rx.on_packet(&deliver(&m, 0), 0));
        assert_eq!(rx.state(), 0);
    }

    #[test]
    fn stale_updates_are_dropped() {
        let mut tx = LogicalWireTx::new(1.into(), 0, 8);
        let mut rx = LogicalWireRx::new(0);
        let m1 = tx.observe(1).unwrap();
        let m2 = tx.observe(2).unwrap();
        assert!(rx.on_packet(&deliver(&m2, 5), 5));
        // m1 arrives late: ignored.
        assert!(!rx.on_packet(&deliver(&m1, 6), 6));
        assert_eq!(rx.state(), 2);
    }

    #[test]
    fn updates_ride_priority_class() {
        let mut tx = LogicalWireTx::new(1.into(), 0, 8);
        let m = tx.observe(1).unwrap();
        assert_eq!(m.class, ServiceClass::Priority);
        // Single flit, 16+ meaningful bits.
        assert_eq!(m.payloads.len(), 1);
    }
}
