//! Inter-chip gateways (paper §1).
//!
//! The paper's client list includes "gateways to networks on other
//! chips", motivated by its own lineage of inter-chip interconnection
//! networks (the paper's reference \[7\]). A gateway occupies one tile; packets bound for another
//! chip are addressed to the local gateway with an encapsulation header
//! carrying the global destination, cross a (slower, narrower) off-chip
//! link, and are re-injected by the peer gateway toward the final tile.
//!
//! This module provides the encapsulation codec and the
//! [`GatewayEndpoint`] state machine; `ocin_sim::MultiChipSim` wires two
//! endpoints across a serial off-chip link.

use std::collections::VecDeque;

use ocin_core::flit::ServiceClass;
use ocin_core::ids::NodeId;
use ocin_core::interface::DeliveredPacket;

use crate::codec::{Header, Message, ServiceKind};

/// A tile on a named chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalAddress {
    /// Chip index within the system.
    pub chip: u8,
    /// Tile on that chip.
    pub node: NodeId,
}

impl GlobalAddress {
    /// Creates a global address.
    pub fn new(chip: u8, node: NodeId) -> GlobalAddress {
        GlobalAddress { chip, node }
    }
}

impl std::fmt::Display for GlobalAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}t{}", self.chip, self.node)
    }
}

/// A datagram crossing chips: the final destination plus up to one flit
/// (4 words) of user payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayDatagram {
    /// Originating tile (global).
    pub src: GlobalAddress,
    /// Final destination (global).
    pub dst: GlobalAddress,
    /// User payload words.
    pub words: Vec<u64>,
}

/// Encapsulates a datagram into a network message addressed to the local
/// gateway tile.
///
/// # Panics
///
/// Panics if more than 4 payload words are supplied (one inner flit).
pub fn encapsulate(gateway: NodeId, dgram: &GatewayDatagram) -> Message {
    assert!(
        dgram.words.len() <= 4,
        "one inner flit per gateway datagram"
    );
    Message::multi_flit(
        gateway,
        gateway_header(dgram),
        &dgram.words,
        ServiceClass::Bulk,
    )
}

/// The encapsulation header for a datagram.
///
/// Layout: `seq` carries the full 16-bit source tile id; `aux` carries
/// `src.chip` in bits 31..24, `dst.chip` in bits 23..16, and the full
/// 16-bit destination tile id in bits 15..0. Tile ids are never
/// truncated, so addresses survive round trips on chips with ≥ 256
/// tiles (a k=16 torus already has node ids up to 255; k=32 up to
/// 1023).
fn gateway_header(dgram: &GatewayDatagram) -> Header {
    Header {
        service: ServiceKind::Gateway,
        opcode: dgram.words.len() as u8,
        seq: u16::from(dgram.src.node),
        aux: (dgram.src.chip as u32) << 24
            | (dgram.dst.chip as u32) << 16
            | u32::from(u16::from(dgram.dst.node)),
    }
}

/// Decapsulates a delivered gateway packet, if it is one.
pub fn decapsulate(packet: &DeliveredPacket) -> Option<GatewayDatagram> {
    let h = Header::from_payloads(&packet.payloads)?;
    if h.service != ServiceKind::Gateway {
        return None;
    }
    let words = Message::extract_data(&packet.payloads, h.opcode as usize);
    Some(GatewayDatagram {
        src: GlobalAddress::new((h.aux >> 24) as u8, NodeId::new(h.seq)),
        dst: GlobalAddress::new((h.aux >> 16) as u8, NodeId::new((h.aux & 0xFFFF) as u16)),
        words,
    })
}

/// One side of an off-chip link: queues outbound datagrams, accepts
/// inbound ones, and re-injects arrivals toward their final local tile.
#[derive(Debug)]
pub struct GatewayEndpoint {
    /// Which chip this endpoint sits on.
    pub chip: u8,
    /// The tile it occupies.
    pub node: NodeId,
    outbound: VecDeque<GatewayDatagram>,
    /// Datagrams forwarded off-chip.
    pub forwarded: u64,
    /// Datagrams re-injected locally.
    pub reinjected: u64,
}

impl GatewayEndpoint {
    /// Creates the endpoint for `node` on `chip`.
    pub fn new(chip: u8, node: NodeId) -> GatewayEndpoint {
        GatewayEndpoint {
            chip,
            node,
            outbound: VecDeque::new(),
            forwarded: 0,
            reinjected: 0,
        }
    }

    /// Consumes a packet delivered to the gateway tile; datagrams for
    /// other chips join the off-chip queue. Returns `true` if consumed.
    pub fn on_packet(&mut self, packet: &DeliveredPacket) -> bool {
        let Some(dgram) = decapsulate(packet) else {
            return false;
        };
        debug_assert_ne!(
            dgram.dst.chip, self.chip,
            "local traffic never hits the gateway"
        );
        self.outbound.push_back(dgram);
        true
    }

    /// Takes the next datagram to serialize onto the off-chip link.
    pub fn next_outbound(&mut self) -> Option<GatewayDatagram> {
        let d = self.outbound.pop_front();
        if d.is_some() {
            self.forwarded += 1;
        }
        d
    }

    /// Outbound datagrams waiting for the off-chip link.
    pub fn backlog(&self) -> usize {
        self.outbound.len()
    }

    /// Handles a datagram arriving from off-chip: if it is for this
    /// chip, returns the message to re-inject toward the final tile (or
    /// to forward onward via this chip's own gateway table in larger
    /// systems).
    pub fn on_arrival(&mut self, dgram: &GatewayDatagram) -> Message {
        self.reinjected += 1;
        if dgram.dst.chip == self.chip {
            // Deliver locally: re-frame so the final tile can read the
            // words (and still see the global source).
            Message::multi_flit(
                dgram.dst.node,
                gateway_header(dgram),
                &dgram.words,
                ServiceClass::Bulk,
            )
        } else {
            // Multi-hop systems would route toward the next gateway;
            // with two chips this cannot happen.
            encapsulate(self.node, dgram)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocin_core::ids::PacketId;

    fn deliver(msg: &Message, dst: NodeId) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(0),
            src: 0.into(),
            dst,
            class: msg.class,
            flow: None,
            created_at: 0,
            injected_at: 0,
            delivered_at: 0,
            num_flits: msg.payloads.len(),
            payloads: msg.payloads.clone(),
            corrupted: false,
        }
    }

    #[test]
    fn encapsulation_roundtrip() {
        let d = GatewayDatagram {
            src: GlobalAddress::new(0, 3.into()),
            dst: GlobalAddress::new(1, 12.into()),
            words: vec![0xAA, 0xBB, 0xCC],
        };
        let msg = encapsulate(5.into(), &d);
        assert_eq!(msg.dst, NodeId::new(5));
        let back = decapsulate(&deliver(&msg, 5.into())).unwrap();
        assert_eq!(back, d);
    }

    /// Node ids at and beyond the 8-bit boundary survive the packed
    /// header: 255 (last k=16 row-15 tile under the old 8-bit field),
    /// 256 (first id the old layout aliased back to 0), and 1023 (the
    /// last tile of a k=32 torus).
    #[test]
    fn large_node_ids_roundtrip_without_aliasing() {
        for &(src_node, dst_node) in &[(255u16, 256u16), (256, 255), (1023, 512), (1023, 1023)] {
            let d = GatewayDatagram {
                src: GlobalAddress::new(2, src_node.into()),
                dst: GlobalAddress::new(3, dst_node.into()),
                words: vec![0xFEED],
            };
            let msg = encapsulate(5.into(), &d);
            let back = decapsulate(&deliver(&msg, 5.into())).unwrap();
            assert_eq!(back, d, "node ids {src_node}->{dst_node} must not alias");
        }
        // The reinjection path re-frames with the same layout.
        let mut gw = GatewayEndpoint::new(3, 2.into());
        let d = GatewayDatagram {
            src: GlobalAddress::new(2, 1023.into()),
            dst: GlobalAddress::new(3, 300.into()),
            words: vec![0x99],
        };
        let msg = gw.on_arrival(&d);
        assert_eq!(msg.dst, NodeId::new(300));
        assert_eq!(decapsulate(&deliver(&msg, 300.into())).unwrap(), d);
    }

    #[test]
    fn four_word_payload_spans_two_flits() {
        let d = GatewayDatagram {
            src: GlobalAddress::new(0, 0.into()),
            dst: GlobalAddress::new(1, 1.into()),
            words: vec![1, 2, 3, 4],
        };
        let msg = encapsulate(5.into(), &d);
        assert_eq!(msg.payloads.len(), 2);
        let back = decapsulate(&deliver(&msg, 5.into())).unwrap();
        assert_eq!(back.words, vec![1, 2, 3, 4]);
    }

    #[test]
    fn endpoint_queues_and_forwards() {
        let mut gw = GatewayEndpoint::new(0, 5.into());
        let d = GatewayDatagram {
            src: GlobalAddress::new(0, 1.into()),
            dst: GlobalAddress::new(1, 9.into()),
            words: vec![7],
        };
        assert!(gw.on_packet(&deliver(&encapsulate(5.into(), &d), 5.into())));
        assert_eq!(gw.backlog(), 1);
        assert_eq!(gw.next_outbound(), Some(d));
        assert_eq!(gw.forwarded, 1);
        assert_eq!(gw.next_outbound(), None);
    }

    #[test]
    fn arrival_reinjects_toward_final_tile() {
        let mut gw = GatewayEndpoint::new(1, 2.into());
        let d = GatewayDatagram {
            src: GlobalAddress::new(0, 1.into()),
            dst: GlobalAddress::new(1, 9.into()),
            words: vec![0x42],
        };
        let msg = gw.on_arrival(&d);
        assert_eq!(msg.dst, NodeId::new(9));
        // The final tile can decode the original datagram.
        let back = decapsulate(&deliver(&msg, 9.into())).unwrap();
        assert_eq!(back, d);
        assert_eq!(gw.reinjected, 1);
    }

    #[test]
    fn non_gateway_packets_pass_through() {
        let mut gw = GatewayEndpoint::new(0, 5.into());
        let mut tx = crate::logical_wire::LogicalWireTx::new(5.into(), 0, 8);
        let m = tx.observe(1).unwrap();
        assert!(!gw.on_packet(&deliver(&m, 5.into())));
    }
}
