//! The Probe seam is the sanctioned feeding path: the collector calls
//! here are exempt by path.

pub fn flit_forwarded(&mut self, now: u64) {
    if let Some(t) = self.telemetry.as_mut() {
        t.record_forwarded(now, 0.into(), Port::Tile);
    }
}

pub fn packet_dropped(&mut self, now: u64) {
    if let Some(t) = self.telemetry.as_mut() {
        t.record_dropped(now);
    }
}
