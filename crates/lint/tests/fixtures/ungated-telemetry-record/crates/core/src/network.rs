//! Fixture: `ungated-telemetry-record` — engine code calling the
//! telemetry collector directly fires; suppressed sites, quoted names,
//! and test modules do not.

pub fn bad_step(telemetry: &mut TelemetryCollector, now: u64) {
    telemetry.record_forwarded(now, 0.into(), Port::Tile); // FINDING: line 6
    telemetry.record_occupancy(now, 3); // FINDING: line 7
}

pub fn suppressed(telemetry: &mut TelemetryCollector, now: u64) {
    // ocin-lint: allow(ungated-telemetry-record) — fixture: presence-gated by the caller
    telemetry.record_injected(now);
}

/// Hook names quoted in docs or strings never fire.
pub fn quoted() -> &'static str {
    "record_delivered and record_credit_stall"
}

#[cfg(test)]
mod tests {
    #[test]
    fn direct_calls_in_tests_are_fine() {
        let mut t = TelemetryCollector::new(16, 1);
        t.record_dropped(0);
        t.record_misroute(1);
    }
}
