//! Fixture: `todo-in-shipping-code` — stubs in shipping paths fire;
//! suppressed sites and test code do not.

pub fn stubbed() {
    todo!() // FINDING: line 5
}

pub fn also_stubbed() {
    unimplemented!("later") // FINDING: line 9
}

pub fn suppressed() {
    // ocin-lint: allow(todo-in-shipping-code) — fixture: gated behind an unreleased feature flag
    todo!()
}

#[cfg(test)]
mod tests {
    fn helper() {
        todo!()
    }
}
