//! Fixture: `println-in-core` — stdout macros in a library crate fire
//! outside tests; suppressed, stringy, and test-module uses do not.

pub fn noisy(x: u32) -> u32 {
    println!("x = {x}"); // FINDING: line 5
    eprintln!("still noisy"); // FINDING: line 6
    dbg!(x) // FINDING: line 7
}

/// A doc-comment mention of println! does not fire, and neither does
/// one in a string:
pub fn fine() -> &'static str {
    "println! by name"
}

pub fn suppressed() {
    // ocin-lint: allow(println-in-core) — fixture: one-off diagnostic behind a debug flag
    println!("allowed with justification");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("test output is fine");
    }
}
