//! Fixture: the bench harness is outside the rule's include scope —
//! experiment binaries print their tables to stdout by design.

fn main() {
    println!("experiment output is the product here");
}
