//! Fixture: `raw-thread-spawn` — ad-hoc threads outside the sanctioned
//! parallel seams fire; suppressed, excluded-path, and test-module
//! uses do not.

pub fn fan_out() {
    let h = std::thread::spawn(|| 42); // FINDING: line 6
    std::thread::scope(|_s| {}); // FINDING: line 7
    let _ = h.join();
}

/// A doc-comment mention of thread::spawn does not fire, and neither
/// does one in a string:
pub fn fine() -> &'static str {
    "thread::spawn by name"
}

pub fn suppressed() {
    // ocin-lint: allow(raw-thread-spawn) — fixture: prototype harness pending its SimPool port
    std::thread::spawn(|| ()).join().unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_thread() {
        std::thread::spawn(|| ()).join().unwrap();
    }
}
