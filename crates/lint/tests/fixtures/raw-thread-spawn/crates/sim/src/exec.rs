//! Fixture: `crates/sim/src/exec.rs` is the one sanctioned seam — the
//! two-level executor owns every worker thread in the workspace.

pub fn run_scoped() {
    std::thread::scope(|_s| {});
    let _ = std::thread::spawn(|| 42).join();
}
