//! Fixture: `crates/sim/src/pool.rs` is no longer a sanctioned seam —
//! the pool must borrow workers from the executor, not spawn its own.

pub fn run_points() {
    std::thread::scope(|_s| {}); // FINDING: line 5
}
