//! Fixture: `crates/sim/src/pool.rs` is a sanctioned seam — the
//! deterministic point-evaluation pool owns its worker threads.

pub fn run_points() {
    std::thread::scope(|_s| {});
}
