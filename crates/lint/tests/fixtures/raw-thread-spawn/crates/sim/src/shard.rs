//! Fixture: `crates/sim/src/shard.rs` is a sanctioned seam — the
//! sharded runner steps one network across scoped worker threads.

pub fn run_sharded() {
    std::thread::scope(|_s| {});
}
