//! Fixture: `crates/sim/src/shard.rs` is no longer a sanctioned seam —
//! the sharded runner must borrow workers from the executor.

pub fn run_sharded() {
    std::thread::scope(|_s| {}); // FINDING: line 5
}
