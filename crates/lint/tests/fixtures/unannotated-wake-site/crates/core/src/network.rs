//! Fixture: `unannotated-wake-site` — wake-up calls in the gated
//! engine fire unless an `// INVARIANT:` comment states the wake rule.

pub fn bare_wake(active: &mut [bool], node: usize) {
    wake_router(active, node); // FINDING: line 5
}

pub fn bare_channel_wake(active: &mut [bool], ci: usize) {
    if ci < active.len() {
        wake_channel(active, ci); // FINDING: line 10
    }
}

pub fn annotated_wake(active: &mut [bool], node: usize) {
    // INVARIANT: wake — the receive above gave the router work.
    wake_router(active, node);
}

pub fn annotated_pipe_wake(active: &mut [bool], node: usize) {
    // INVARIANT: wake-rule (pipes) — the annotation reaches through a
    // short statement run.
    let due = node + 1;
    wake_pipe(active, due);
}

// INVARIANT: wake-rule (routers) — definition site; the set bit is
// cleared only at a proven-quiescent router.
fn wake_router(active: &mut [bool], node: usize) {
    active[node] = true;
}

// INVARIANT: wake-rule (channels) — definition site.
fn wake_channel(active: &mut [bool], ci: usize) {
    active[ci] = true;
}

// INVARIANT: wake-rule (pipes) — definition site.
fn wake_pipe(active: &mut [bool], node: usize) {
    active[node] = true;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_wake_bare() {
        let mut active = [false; 4];
        super::wake_router(&mut active, 1);
        assert!(active[1]);
    }
}
