//! Fixture: `unseeded-rng` — entropy-seeded generators fire anywhere
//! in the tree; seeded construction and suppressed sites do not.

pub fn bad_thread_rng() {
    let _rng = rand::thread_rng(); // FINDING: line 5
}

pub fn bad_from_entropy() {
    let _rng = StdRng::from_entropy(); // FINDING: line 9
}

pub fn fine_seeded() {
    let _rng = StdRng::seed_from_u64(42);
}

pub fn suppressed() {
    // ocin-lint: allow(unseeded-rng) — fixture: demo binary, results never compared
    let _rng = rand::thread_rng();
}
