//! Fixture: `panic-in-router-hot-path` — unannotated panic sites in a
//! router core fire; INVARIANT-annotated ones and test code do not.

pub fn bare_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // FINDING: line 5
}

pub fn bare_panic(ok: bool) {
    if !ok {
        panic!("protocol violation"); // FINDING: line 10
    }
}

pub fn annotated(x: Option<u8>) -> u8 {
    // INVARIANT: x is Some by construction — the caller resolves the
    // route before this point.
    x.expect("resolved upstream")
}

pub fn annotated_chain(x: Option<u8>) -> u8 {
    // INVARIANT: the annotation reaches through a multi-line chain.
    x.map(|v| v + 1)
        .filter(|v| *v > 0)
        .expect("still covered")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert!(super::bare_unwrap(Some(3)) == 3);
        None::<u8>.unwrap_or(0);
        Some(1u8).unwrap();
    }
}
