//! Fixture: `malformed-suppression` — an allow that names an unknown
//! rule or omits its justification is itself a finding, and an
//! unjustified allow does not suppress.

// ocin-lint: allow(no-such-rule) — the rule name is wrong
pub fn unknown_rule() {}

pub struct Unjustified {
    pub cache: std::collections::HashMap<u32, u32>, // ocin-lint: allow(nondeterministic-iteration)
}
