//! Fixture: `wall-clock-in-sim` — wall-clock reads in a simulation
//! crate fire; suppressed and quoted ones do not.

use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now() // FINDING: line 7
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now() // FINDING: line 11
}

pub fn suppressed() -> Instant {
    // ocin-lint: allow(wall-clock-in-sim) — fixture: diagnostic-only timing, never in a report
    Instant::now()
}

/// `Instant::now` in a doc comment or a string never fires.
pub fn quoted() -> &'static str {
    "Instant::now and SystemTime::now"
}
