//! The bench harness is where ambient configuration belongs: reads
//! here are exempt by path.

pub fn quick_mode() -> bool {
    std::env::var("OCIN_QUICK").is_ok_and(|v| v == "1")
}

pub fn metrics_out() -> Option<std::ffi::OsString> {
    std::env::var_os("OCIN_METRICS_OUT")
}
