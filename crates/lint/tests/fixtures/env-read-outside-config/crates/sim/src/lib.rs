//! Fixture: `env-read-outside-config` — ambient `std::env` reads in
//! library crates fire; the bench harness, CLI bins, and suppressed
//! reads do not.

pub fn bad_var() -> Option<String> {
    std::env::var("OCIN_FOO").ok() // FINDING: line 6
}

pub fn bad_var_os() -> Option<std::ffi::OsString> {
    std::env::var_os("OCIN_BAR") // FINDING: line 10
}

pub fn suppressed() -> usize {
    // ocin-lint: allow(env-read-outside-config) — fixture: speed knob, never a result
    std::env::var("OCIN_SHARDS").map_or(1, |v| v.len())
}

/// `env::var` quoted in docs or strings never fires.
pub fn quoted() -> &'static str {
    "env::var and env::var_os"
}
