//! CLI entry points read the environment and pass values down as
//! config: exempt by path.

fn main() {
    let _ = std::env::var("OCIN_RADIX");
}
