//! Fixture: `nondeterministic-iteration` — one finding per marked
//! line, none for the suppressed or non-code cases.

use std::collections::HashMap; // FINDING: line 4
use std::collections::{BTreeMap, HashSet}; // FINDING: line 5

/// Ordered maps never fire.
pub fn fine() -> BTreeMap<u8, u8> {
    BTreeMap::new()
}

/// A mention of HashMap in a doc comment does not fire, and neither
/// does one in a string:
pub fn also_fine() -> &'static str {
    "HashMap and HashSet by name"
}

pub struct Suppressed {
    // ocin-lint: allow(nondeterministic-iteration) — fixture: keys are looked up, never iterated
    pub cache: HashMap<u32, u32>,
    inner: HashSet<u8>, // FINDING: line 21 (the allow above covers only its own line and the next)
}
