//! Fixture-driven tests for `ocin-lint`, plus the workspace
//! self-check: the live tree must produce zero findings, and the JSON
//! report must be byte-identical across runs.

use std::path::{Path, PathBuf};
use std::process::Command;

use ocin_lint::{analyze_workspace, Analysis};

/// The real workspace root (two levels above this crate).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// A fixture tree: a miniature workspace holding deliberate violations.
fn fixture_root(rule: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

fn analyze_fixture(rule: &str) -> Analysis {
    analyze_workspace(&fixture_root(rule)).expect("fixture scan")
}

/// `(rule, line)` pairs of an analysis, for compact assertions.
fn hits(a: &Analysis) -> Vec<(String, usize)> {
    a.findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect()
}

#[test]
fn fixture_nondeterministic_iteration() {
    let a = analyze_fixture("nondeterministic-iteration");
    let want = |r: &str, l| (r.to_string(), l);
    assert_eq!(
        hits(&a),
        vec![
            want("nondeterministic-iteration", 4),
            want("nondeterministic-iteration", 5),
            want("nondeterministic-iteration", 21),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_wall_clock_in_sim() {
    let a = analyze_fixture("wall-clock-in-sim");
    assert_eq!(
        hits(&a),
        vec![
            ("wall-clock-in-sim".to_string(), 7),
            ("wall-clock-in-sim".to_string(), 11),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_unseeded_rng() {
    let a = analyze_fixture("unseeded-rng");
    assert_eq!(
        hits(&a),
        vec![
            ("unseeded-rng".to_string(), 5),
            ("unseeded-rng".to_string(), 9),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_env_read_outside_config() {
    let a = analyze_fixture("env-read-outside-config");
    assert_eq!(
        hits(&a),
        vec![
            ("env-read-outside-config".to_string(), 6),
            ("env-read-outside-config".to_string(), 10),
        ],
        "{:#?}",
        a.findings
    );
    // The span names the exact token: `std::env::var(` starts after
    // four spaces of indentation and a `std::` prefix.
    assert_eq!((a.findings[0].col, a.findings[0].end_col), (10, 18));
    assert_eq!((a.findings[1].col, a.findings[1].end_col), (10, 21));
}

#[test]
fn fixture_panic_in_router_hot_path() {
    let a = analyze_fixture("panic-in-router-hot-path");
    assert_eq!(
        hits(&a),
        vec![
            ("panic-in-router-hot-path".to_string(), 5),
            ("panic-in-router-hot-path".to_string(), 10),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_println_in_core() {
    let a = analyze_fixture("println-in-core");
    assert_eq!(
        hits(&a),
        vec![
            ("println-in-core".to_string(), 5),
            ("println-in-core".to_string(), 6),
            ("println-in-core".to_string(), 7),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_raw_thread_spawn() {
    let a = analyze_fixture("raw-thread-spawn");
    assert_eq!(
        hits(&a),
        vec![
            // exec.rs is the sanctioned seam (excluded); pool.rs and
            // shard.rs now fire — they borrow workers from the executor.
            ("raw-thread-spawn".to_string(), 6),
            ("raw-thread-spawn".to_string(), 7),
            ("raw-thread-spawn".to_string(), 5),
            ("raw-thread-spawn".to_string(), 5),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_todo_in_shipping_code() {
    let a = analyze_fixture("todo-in-shipping-code");
    assert_eq!(
        hits(&a),
        vec![
            ("todo-in-shipping-code".to_string(), 5),
            ("todo-in-shipping-code".to_string(), 9),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_unannotated_wake_site() {
    let a = analyze_fixture("unannotated-wake-site");
    assert_eq!(
        hits(&a),
        vec![
            ("unannotated-wake-site".to_string(), 5),
            ("unannotated-wake-site".to_string(), 10),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_ungated_telemetry_record() {
    let a = analyze_fixture("ungated-telemetry-record");
    assert_eq!(
        hits(&a),
        vec![
            ("ungated-telemetry-record".to_string(), 6),
            ("ungated-telemetry-record".to_string(), 7),
        ],
        "{:#?}",
        a.findings
    );
}

#[test]
fn fixture_malformed_suppression() {
    let a = analyze_fixture("malformed-suppression");
    assert_eq!(
        hits(&a),
        vec![
            ("malformed-suppression".to_string(), 5),
            ("malformed-suppression".to_string(), 9),
            // The unjustified allow does not suppress the HashMap it
            // decorates.
            ("nondeterministic-iteration".to_string(), 9),
        ],
        "{:#?}",
        a.findings
    );
}

/// The live workspace lints clean: every determinism rule holds, and
/// every exemption carries a justification. This is the test that
/// keeps future PRs honest.
#[test]
fn workspace_self_check_is_clean() {
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        a.findings.is_empty(),
        "ocin-lint found violations in the live workspace:\n{:#?}",
        a.findings
    );
    // Sanity: the scan actually visited the tree.
    assert!(
        a.files_scanned > 80,
        "only {} files scanned",
        a.files_scanned
    );
}

/// The linter obeys its own determinism rules: scanning the same tree
/// twice renders byte-identical JSON.
#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = fixture_root("nondeterministic-iteration");
    let a = analyze_workspace(&root).expect("scan 1");
    let b = analyze_workspace(&root).expect("scan 2");
    assert_eq!(
        ocin_lint::report::to_json(&a),
        ocin_lint::report::to_json(&b)
    );
}

/// `ocin-lint rules` lists every shipped rule by name.
#[test]
fn cli_rules_lists_the_rule_set() {
    let out = Command::new(env!("CARGO_BIN_EXE_ocin-lint"))
        .arg("rules")
        .output()
        .expect("run ocin-lint rules");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in ocin_lint::rules::all_rules() {
        assert!(
            text.contains(rule.name),
            "rules listing missing {}",
            rule.name
        );
    }
    assert!(text.contains("env-read-outside-config"));
}

/// Exit-code contract of the CLI: 0 on the clean workspace, nonzero on
/// every rule fixture — this is exactly what the CI job gates on.
#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_ocin-lint");
    let tmp = std::env::temp_dir();

    let clean = Command::new(bin)
        .args(["check", "--root"])
        .arg(workspace_root())
        .arg("--report")
        .arg(tmp.join(format!("ocin-lint-self-{}.json", std::process::id())))
        .output()
        .expect("run ocin-lint");
    assert!(
        clean.status.success(),
        "self-check failed:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    for rule in [
        "nondeterministic-iteration",
        "wall-clock-in-sim",
        "unseeded-rng",
        "env-read-outside-config",
        "panic-in-router-hot-path",
        "unannotated-wake-site",
        "println-in-core",
        "raw-thread-spawn",
        "ungated-telemetry-record",
        "todo-in-shipping-code",
        "malformed-suppression",
    ] {
        let out = Command::new(bin)
            .args(["check", "--root"])
            .arg(fixture_root(rule))
            .arg("--report")
            .arg(tmp.join(format!("ocin-lint-{rule}-{}.json", std::process::id())))
            .output()
            .expect("run ocin-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {rule} should fail the lint:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
