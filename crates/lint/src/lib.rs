//! `ocin-lint`: static analysis that keeps the simulator deterministic.
//!
//! The reproduction's claims (zero-load latency, saturation throughput,
//! duty factors) are quantitative, so its value rests on bit-identical
//! reruns: the sweep engine derives every seed from the point spec, CI
//! byte-diffs probe dumps, and the test suite runs back to back. The
//! rules that *keep* those properties true — no wall clocks in the
//! simulation path, no unordered-map iteration feeding reports, no
//! unseeded randomness — used to exist only as convention. This crate
//! makes them machine-checked.
//!
//! The pass is self-contained and offline (std only, matching the
//! workspace's vendored-stand-in policy). It lexes each Rust source
//! into code and comment channels so rules fire on code tokens, never
//! on doc text ([`lexer`]); applies a path-scoped rule set ([`rules`]);
//! honours inline suppressions of the form
//! `// ocin-lint: allow(<rule>) — <justification>` and, for the
//! hot-path panic rule, `// INVARIANT:` annotations ([`engine`]); and
//! renders a deterministic JSON report ([`report`]).
//!
//! Run it as `cargo run -p ocin-lint -- check`. The exit status is 0
//! only when the workspace is clean, which is what the CI job gates on.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{analyze_workspace, find_workspace_root, Analysis, Finding};
