//! Deterministic rendering of an [`Analysis`]: human text and JSON.
//!
//! The JSON report is the CI artifact and must be byte-identical
//! across runs of the same tree: findings arrive pre-sorted from the
//! engine, keys are emitted in a fixed order, and nothing volatile
//! (timestamps, absolute paths, durations) is included.
//!
//! Format history: `"ocin-lint v2"` added the `col`/`end_col` span
//! fields to each finding (a half-open 1-based byte-column range) and
//! the column to the text rendering (`path:line:col`). v1 consumers
//! that index findings by `(path, line, rule)` keep working — field
//! order is unchanged apart from the insertion after `line`.

use crate::engine::Analysis;

/// Renders the machine-readable report.
pub fn to_json(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"format\": \"ocin-lint v2\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        analysis.files_scanned
    ));
    out.push_str(&format!(
        "  \"findings_total\": {},\n",
        analysis.findings.len()
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"col\": {}, ", f.col));
        out.push_str(&format!("\"end_col\": {}, ", f.end_col));
        out.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        out.push_str(&format!("\"snippet\": {}", json_str(&f.snippet)));
        out.push('}');
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the human-readable transcript printed by `ocin-lint check`.
pub fn to_text(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n    {}\n",
            f.path, f.line, f.col, f.rule, f.message, f.snippet
        ));
    }
    out.push_str(&format!(
        "ocin-lint: {} finding(s) in {} file(s) scanned\n",
        analysis.findings.len(),
        analysis.files_scanned
    ));
    out
}

/// JSON string escaping (the subset the findings can contain).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                path: "crates/core/src/x.rs".to_string(),
                line: 7,
                rule: "unseeded-rng".to_string(),
                col: 15,
                end_col: 25,
                message: "`thread_rng`: seed it".to_string(),
                snippet: "let mut rng = thread_rng(); // \"quoted\"".to_string(),
            }],
            files_scanned: 3,
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let a = sample();
        let j1 = to_json(&a);
        let j2 = to_json(&a);
        assert_eq!(j1, j2);
        assert!(j1.contains("\\\"quoted\\\""));
        assert!(j1.contains("\"findings_total\": 1"));
    }

    #[test]
    fn v2_report_carries_column_spans() {
        let a = sample();
        let j = to_json(&a);
        assert!(j.contains("\"format\": \"ocin-lint v2\""));
        assert!(j.contains("\"col\": 15, \"end_col\": 25"));
        assert!(to_text(&a).contains("crates/core/src/x.rs:7:15: [unseeded-rng]"));
    }

    #[test]
    fn empty_report_renders_an_empty_array() {
        let a = Analysis {
            findings: vec![],
            files_scanned: 9,
        };
        let j = to_json(&a);
        assert!(j.contains("\"findings\": []"));
        assert!(to_text(&a).contains("0 finding(s) in 9 file(s)"));
    }
}
