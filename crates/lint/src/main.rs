//! The `ocin-lint` CLI.
//!
//! ```text
//! ocin-lint check [--root DIR] [--report FILE]   lint the workspace
//! ocin-lint rules                                list the rule set
//! ```
//!
//! `check` prints findings to stdout, writes the deterministic JSON
//! report (default `target/ocin-lint.json`), and exits 0 only when the
//! tree is clean — nonzero exits are what the CI job and the fixture
//! tests assert on.

use std::path::PathBuf;
use std::process::ExitCode;

use ocin_lint::{analyze_workspace, find_workspace_root, report, rules};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for r in rules::all_rules() {
                println!("{:<28} {}", r.name, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: ocin-lint check [--root DIR] [--report FILE] | ocin-lint rules");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "--report" => report_path = it.next().map(PathBuf::from),
            other => {
                eprintln!("ocin-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ocin-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ocin-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report::to_text(&analysis));

    let report_path = report_path.unwrap_or_else(|| root.join("target/ocin-lint.json"));
    if let Some(parent) = report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&report_path, report::to_json(&analysis)) {
        eprintln!("ocin-lint: write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }
    println!("report: {}", report_path.display());

    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
