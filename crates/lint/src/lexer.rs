//! A small comment/string/raw-string-aware lexer for Rust sources.
//!
//! The rules in this crate match on *code* tokens only: a `HashMap`
//! mentioned in a doc comment, a `panic!` quoted inside a string
//! literal, or a `thread_rng` in a `r#"..."#` raw string must never
//! fire a finding. Rather than parse Rust properly, the lexer splits
//! every line of a file into two channels:
//!
//! * **code** — the source text with comments removed and the contents
//!   of string/char literals blanked out (replaced by spaces, so byte
//!   columns still line up with the original file), and
//! * **comment** — the concatenated text of any comments on the line
//!   (used to honour `// ocin-lint: allow(...)` suppressions and
//!   `// INVARIANT:` annotations).
//!
//! The lexer understands line comments, nested block comments, string
//! literals with escapes, byte strings, raw strings with any number of
//! `#` guards, char literals, and the char-literal/lifetime ambiguity
//! (`'a'` vs `'a`). It deliberately does not tokenize beyond that:
//! rules do their own word-boundary matching on the code channel.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineView {
    /// 1-based line number.
    pub number: usize,
    /// Code text: comments stripped, literal contents blanked.
    pub code: String,
    /// Comment text on this line (empty when there is none).
    pub comment: String,
    /// The raw source line (for report snippets).
    pub raw: String,
}

/// Lexer state carried across lines.
enum Mode {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    Block(u32),
    /// Inside a `"..."` string literal.
    Str,
    /// Inside a raw string, closed by `"` followed by `hashes` `#`s.
    RawStr(u32),
}

/// Splits a whole file into per-line [`LineView`]s.
pub fn split_lines(source: &str) -> Vec<LineView> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for (idx, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match mode {
                Mode::Block(depth) => {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        comment.push_str("/*");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        mode = if depth > 1 {
                            Mode::Block(depth - 1)
                        } else {
                            Mode::Code
                        };
                        comment.push_str("*/");
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if chars[i] == '\\' {
                        // An escape: blank it and whatever it escapes
                        // (a trailing `\` continues the string onto the
                        // next line and is handled by running out of
                        // chars first).
                        code.push(' ');
                        if i + 1 < chars.len() {
                            code.push(' ');
                        }
                        i += 2;
                    } else if chars[i] == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if chars[i] == '"' {
                        let h = hashes as usize;
                        let closed = (0..h).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                        if closed {
                            code.push('"');
                            for _ in 0..h {
                                code.push('#');
                            }
                            mode = Mode::Code;
                            i += 1 + h;
                            continue;
                        }
                    }
                    code.push(' ');
                    i += 1;
                }
                Mode::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&chars[i..].iter().collect::<String>());
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        comment.push_str("/*");
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                        // Possible raw / byte / raw-byte string prefix.
                        if let Some((hashes, consumed)) = raw_string_open(&chars, i) {
                            for _ in 0..consumed {
                                code.push(' ');
                            }
                            code.push('"');
                            mode = Mode::RawStr(hashes);
                            i += consumed + 1;
                        } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                            code.push(' ');
                            code.push('"');
                            mode = Mode::Str;
                            i += 2;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal or lifetime?
                        if let Some(len) = char_literal_len(&chars, i) {
                            code.push('\'');
                            for _ in 1..len {
                                code.push(' ');
                            }
                            i += len;
                        } else {
                            // A lifetime (or a stray quote): keep as-is.
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        // A plain string literal cannot span lines without a trailing
        // backslash; if we consumed one, stay in Str mode (the blanked
        // escape above already ate the backslash).
        out.push(LineView {
            number: idx + 1,
            code,
            comment,
            raw: raw.to_string(),
        });
    }
    out
}

/// Whether `chars[i]` is preceded by an identifier character (so an
/// `r` or `b` there is part of a name like `attr` rather than a raw
/// string prefix).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If a raw-string opener starts at `i` (`r"`, `r#"`, `br##"` …),
/// returns `(hash_count, chars_before_the_quote)`.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j - i))
}

/// If a char literal starts at `i`, returns its total length in chars;
/// `None` for lifetimes. Handles `'x'`, `'\n'`, `'\u{…}'`, `b'x'` (the
/// `b` is consumed by the caller as ordinary code).
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped: scan for the closing quote.
        let mut j = i + 2;
        while j < chars.len() {
            if chars[j] == '\'' {
                return Some(j - i + 1);
            }
            j += 1;
        }
        return None;
    }
    // Unescaped: exactly one char then a closing quote.
    (chars.get(i + 2) == Some(&'\'')).then_some(3)
}

/// Finds word-boundary occurrences of `needle` in `haystack` (the code
/// channel). A match is rejected when the adjacent characters are
/// identifier characters, so `HashMap` does not match `FxHashMap` and
/// `unwrap` does not match `unwrap_or`. Multi-token needles such as
/// `Instant::now` match literally (the workspace never spaces `::`).
pub fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        split_lines(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_move_to_the_comment_channel() {
        let lines = split_lines("let x = 1; // HashMap here\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let code = code_of("let s = \"Instant::now inside\"; let t = 1;");
        assert!(!code[0].contains("Instant::now"));
        assert!(code[0].contains("let t = 1;"));
        // Columns preserved.
        assert_eq!(
            code[0].len(),
            "let s = \"Instant::now inside\"; let t = 1;".len()
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let code = code_of(r#"let s = "say \"HashMap\""; HashSet"#);
        assert!(!code[0].contains("HashMap"));
        assert!(code[0].contains("HashSet"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let code = code_of("let s = r#\"thread_rng \"quoted\"\"#; thread_park();");
        assert!(!code[0].contains("thread_rng"));
        assert!(code[0].contains("thread_park"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let src = "a(); /* outer HashMap /* inner */\nstill comment */ b();";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("a();"));
        assert!(!lines[1].code.contains("still"));
        assert!(lines[1].code.contains("b();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let code = code_of("fn f<'a>(x: &'a str) { let c = 'h'; g(c) }");
        assert!(code[0].contains("'a"), "lifetimes survive");
        assert!(
            !code[0].contains('h'),
            "char literal contents blanked: {}",
            code[0]
        );
    }

    #[test]
    fn word_boundaries() {
        assert!(find_word("use std::collections::HashMap;", "HashMap").is_some());
        assert!(find_word("type M = FxHashMap<u8, u8>;", "HashMap").is_none());
        assert!(find_word("x.unwrap_or(0)", "unwrap").is_none());
        assert!(find_word("x.unwrap()", "unwrap").is_some());
        assert!(find_word("Instant::now()", "Instant::now").is_some());
    }
}
