//! The analysis engine: file discovery, rule matching, suppression.
//!
//! The engine is deliberately allocation-light and fully deterministic:
//! files are visited in sorted path order, findings are emitted sorted
//! by `(path, line, rule)`, and nothing consults the clock, the
//! environment, or any randomness — the linter obeys the same rules it
//! enforces.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{find_word, split_lines, LineView};
use crate::rules::{all_rules, rule_named, CodeScope, Rule, Suppression};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name.
    pub rule: String,
    /// 1-based byte column where the offending token starts. The lexer
    /// blanks literal contents in place, so code-channel offsets are
    /// raw-line byte columns.
    pub col: usize,
    /// One past the last byte column of the token (`col..end_col` is
    /// the span, half-open like a Rust range).
    pub end_col: usize,
    /// What fired and what to do about it.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The outcome of a workspace scan.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Findings sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Directories scanned under the workspace root. `target/` (build
/// output) and hidden directories are never entered; fixture trees are
/// skipped so the linter's own test corpus of deliberate violations
/// does not fail the self-check.
const SCAN_ROOTS: &[&str] = &["crates", "examples", "src", "tests", "vendor"];
const SKIP_DIR_NAMES: &[&str] = &["target", "fixtures"];

/// Scans the workspace rooted at `root` with the shipped rule set.
///
/// # Errors
///
/// Returns an I/O error message when the root or a source file cannot
/// be read.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs_files(&base, &mut files)?;
        }
    }
    files.sort();

    let rules = all_rules();
    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        let source =
            fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        analyze_file(&rel, &source, &rules, &mut findings);
    }
    findings.sort();
    Ok(Analysis {
        findings,
        files_scanned: files.len(),
    })
}

/// Recursively collects `.rs` files, skipping build output, hidden
/// directories, and fixture corpora.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIR_NAMES.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// An allow comment parsed from one line.
#[derive(Debug)]
struct Allow {
    line: usize,
    rule: String,
    justified: bool,
}

/// Runs every applicable rule over one file. Public within the crate
/// so fixture tests can lint a single buffer without touching disk.
pub fn analyze_file(rel_path: &str, source: &str, rules: &[Rule], findings: &mut Vec<Finding>) {
    let lines = split_lines(source);
    let allows = parse_allows(rel_path, &lines, findings);

    // The first `#[cfg(test)]` marks the start of the file's test
    // modules (workspace convention: tests live at the end).
    let test_start = lines
        .iter()
        .find(|l| l.code.contains("#[cfg(test)]"))
        .map_or(usize::MAX, |l| l.number);

    for rule in rules.iter().filter(|r| r.applies_to(rel_path)) {
        for line in &lines {
            if rule.scope == CodeScope::OutsideTests && line.number >= test_start {
                break;
            }
            for pat in rule.patterns {
                let Some(at) = find_word(&line.code, pat) else {
                    continue;
                };
                if suppressed(rule, line.number, &lines, &allows) {
                    continue;
                }
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: line.number,
                    rule: rule.name.to_string(),
                    col: at + 1,
                    end_col: at + 1 + pat.len(),
                    message: format!("`{pat}`: {}", rule.advice),
                    snippet: line.raw.trim().to_string(),
                });
            }
        }
    }
}

/// Whether a finding of `rule` at `line` is covered by a suppression:
/// an allow comment on the same line or the line directly above, or —
/// for [`Suppression::AllowOrInvariant`] rules — an `INVARIANT:`
/// comment attached to the statement.
///
/// "Attached" means: on the same line, or reachable by scanning
/// upward through at most three code lines (a panic site often ends a
/// multi-line method chain) and any contiguous run of comment lines.
/// A fully blank line ends the scan, so an annotation never bleeds
/// past the statement group it documents.
fn suppressed(rule: &Rule, line: usize, lines: &[LineView], allows: &[Allow]) -> bool {
    let allowed = allows
        .iter()
        .any(|a| a.rule == rule.name && a.justified && (a.line == line || a.line + 1 == line));
    if allowed {
        return true;
    }
    if rule.suppression != Suppression::AllowOrInvariant {
        return false;
    }
    let idx = line - 1; // lines are 1-based and dense
    if lines[idx].comment.contains("INVARIANT:") {
        return true;
    }
    let mut code_budget = 3;
    for l in lines[..idx].iter().rev() {
        let has_code = !l.code.trim().is_empty();
        let has_comment = !l.comment.trim().is_empty();
        if l.comment.contains("INVARIANT:") {
            return true;
        }
        if has_code {
            if code_budget == 0 {
                return false;
            }
            code_budget -= 1;
        } else if !has_comment {
            // Blank line: the annotation scope ends.
            return false;
        }
    }
    false
}

/// Extracts `ocin-lint: allow(<rule>) — <justification>` comments.
///
/// A malformed allow is itself a finding: naming an unknown rule or
/// omitting the justification defeats the audit trail the mechanism
/// exists to create.
fn parse_allows(rel_path: &str, lines: &[LineView], findings: &mut Vec<Finding>) -> Vec<Allow> {
    const MARKER: &str = "ocin-lint: allow(";
    let mut allows = Vec::new();
    for line in lines {
        let Some(start) = line.comment.find(MARKER) else {
            continue;
        };
        // An allow must *be* the comment, not be mentioned by one: only
        // comment punctuation may precede the marker. This keeps doc
        // text that quotes the syntax (like this crate's own docs) from
        // parsing as a suppression.
        if !line.comment[..start]
            .chars()
            .all(|c| matches!(c, '/' | '*' | '!' | ' ' | '\t'))
        {
            continue;
        }
        // Span the allow marker itself in the raw line (comment-channel
        // offsets are not raw columns — comments concatenate).
        let raw_at = line.raw.find(MARKER).map_or(1, |i| i + 1);
        let rest = &line.comment[start + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: line.number,
                rule: "malformed-suppression".to_string(),
                col: raw_at,
                end_col: raw_at + MARKER.len(),
                message: "unclosed `ocin-lint: allow(` comment".to_string(),
                snippet: line.raw.trim().to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let justification = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim();
        let known = rule_named(&rule).is_some();
        let justified = !justification.is_empty();
        // The span covers `ocin-lint: allow(<rule>)` including the
        // closing paren.
        let allow_end = raw_at + MARKER.len() + rule.len() + 1;
        if !known {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: line.number,
                rule: "malformed-suppression".to_string(),
                col: raw_at,
                end_col: allow_end,
                message: format!("allow names unknown rule `{rule}`"),
                snippet: line.raw.trim().to_string(),
            });
        }
        if !justified {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: line.number,
                rule: "malformed-suppression".to_string(),
                col: raw_at,
                end_col: allow_end,
                message: format!(
                    "allow({rule}) has no justification; write \
                     `// ocin-lint: allow({rule}) — <why this is safe>`"
                ),
                snippet: line.raw.trim().to_string(),
            });
        }
        allows.push(Allow {
            line: line.number,
            rule,
            justified: justified && known,
        });
    }
    allows
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the CLI finds the workspace root when
/// invoked from a subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        analyze_file(path, src, &all_rules(), &mut findings);
        findings.sort();
        findings
    }

    #[test]
    fn hashmap_in_core_is_flagged() {
        let f = lint(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nfn f() -> HashMap<u8, u8> { HashMap::new() }\n",
        );
        // One finding per (line, pattern): the two uses on line 2
        // collapse into a single report.
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "nondeterministic-iteration"));
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn hashmap_outside_scoped_crates_is_fine() {
        assert!(lint("crates/phys/src/x.rs", "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "// ocin-lint: allow(nondeterministic-iteration) — keys only, never iterated\n\
                   use std::collections::HashMap;\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let src =
            "use std::collections::HashMap; // ocin-lint: allow(nondeterministic-iteration)\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == "malformed-suppression"));
        assert!(f.iter().any(|f| f.rule == "nondeterministic-iteration"));
    }

    #[test]
    fn allow_of_unknown_rule_is_a_finding() {
        let src = "// ocin-lint: allow(no-such-rule) — because\nfn f() {}\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "malformed-suppression");
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "// HashMap is forbidden here\nfn f() -> &'static str { \"HashMap\" }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn invariant_comment_clears_hot_path_panic() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // INVARIANT: x is Some by construction.\n\
                   x.unwrap()\n\
                   }\n";
        assert!(lint("crates/core/src/router/vc.rs", src).is_empty());
        let bare = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let f = lint("crates/core/src/router/vc.rs", bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "panic-in-router-hot-path");
    }

    #[test]
    fn test_modules_are_exempt_where_scoped() {
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests {\n fn t() { None::<u8>.unwrap(); todo!() }\n}\n";
        assert!(lint("crates/core/src/router/vc.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_scoping() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(lint("crates/sim/src/x.rs", src).len(), 1);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn workspace_root_is_discoverable() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
    }
}
