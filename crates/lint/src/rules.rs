//! The rule set: what `ocin-lint` enforces and where.
//!
//! Every rule is a set of code-channel token patterns plus a path
//! scope. Scopes are workspace-relative path prefixes, so a rule can
//! target the deterministic simulation core (`crates/core`,
//! `crates/sim`, …) while leaving measurement-harness crates
//! (`crates/bench`, `vendor/criterion`) alone.
//!
//! Rules are data, not code: the engine owns matching, suppression,
//! and reporting, so adding a rule means adding an entry to
//! [`all_rules`] and a fixture under `tests/fixtures/`.

/// Where, within a file, a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeScope {
    /// The whole file, test modules included (determinism rules: a
    /// test that iterates a `HashMap` is as order-sensitive as
    /// shipping code).
    Everywhere,
    /// Only code before the first `#[cfg(test)]` attribute. The
    /// workspace convention keeps test modules at the end of each
    /// file, which is what makes this line-based cutoff sound.
    OutsideTests,
}

/// How a finding can be suppressed inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suppression {
    /// Only the standard `// ocin-lint: allow(<rule>) — <why>` comment.
    AllowComment,
    /// The standard allow comment, or an `// INVARIANT:` comment
    /// attached to the statement (same line, or above it through at
    /// most three code lines and any run of comment lines) — used by
    /// the hot-path panic rule, where the annotation documents *why*
    /// the panic cannot fire rather than excusing it.
    AllowOrInvariant,
}

/// One static-analysis rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable kebab-case name, used in reports and allow comments.
    pub name: &'static str,
    /// One-line description for `ocin-lint rules` and the docs table.
    pub summary: &'static str,
    /// Code-channel tokens that fire the rule (word-boundary matched).
    pub patterns: &'static [&'static str],
    /// Path prefixes the rule applies to (empty = the whole tree).
    pub include: &'static [&'static str],
    /// Path prefixes exempt from the rule.
    pub exclude: &'static [&'static str],
    /// Whether test modules are scanned.
    pub scope: CodeScope,
    /// Accepted suppression mechanisms.
    pub suppression: Suppression,
    /// Explanation attached to findings: what to do instead.
    pub advice: &'static str,
}

impl Rule {
    /// Whether this rule applies to the workspace-relative `path`
    /// (forward-slash separated).
    pub fn applies_to(&self, path: &str) -> bool {
        let included = self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p));
        included && !self.exclude.iter().any(|p| path.starts_with(p))
    }
}

/// The three router cores plus their shared route-resolution helper:
/// code evaluated every cycle for every flit in flight.
const ROUTER_HOT_PATHS: &[&str] = &[
    "crates/core/src/router/vc.rs",
    "crates/core/src/router/dropping.rs",
    "crates/core/src/router/deflection.rs",
    "crates/core/src/router/mod.rs",
];

/// The shipped rule set, in report order.
pub fn all_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "nondeterministic-iteration",
            summary: "HashMap/HashSet in simulation-facing crates",
            patterns: &["HashMap", "HashSet"],
            include: &[
                "crates/core/",
                "crates/sim/",
                "crates/services/",
                "crates/traffic/",
            ],
            exclude: &[],
            scope: CodeScope::Everywhere,
            suppression: Suppression::AllowComment,
            advice: "iteration order feeds reports and scheduling; use \
                     BTreeMap/BTreeSet, or justify why order can never escape",
        },
        Rule {
            name: "wall-clock-in-sim",
            summary: "Instant::now/SystemTime::now outside the bench harness",
            patterns: &["Instant::now", "SystemTime::now"],
            include: &[],
            exclude: &["crates/bench/"],
            scope: CodeScope::Everywhere,
            suppression: Suppression::AllowComment,
            advice: "simulation results must depend only on (config, seed); \
                     wall-clock reads belong in crates/bench",
        },
        Rule {
            name: "unseeded-rng",
            summary: "thread_rng/from_entropy/OsRng anywhere",
            patterns: &["thread_rng", "from_entropy", "OsRng"],
            include: &[],
            exclude: &[],
            scope: CodeScope::Everywhere,
            suppression: Suppression::AllowComment,
            advice: "every RNG must be seeded from the run's SimConfig seed \
                     (see ocin_sim::pool::derive_seed)",
        },
        Rule {
            name: "env-read-outside-config",
            summary: "std::env::var/var_os outside the bench harness and CLI bins",
            patterns: &["env::var", "env::var_os"],
            include: &[],
            exclude: &["crates/bench/", "src/bin/"],
            scope: CodeScope::Everywhere,
            suppression: Suppression::AllowComment,
            advice: "a simulation result must be a function of (config, seed), \
                     never of ambient process state; thread the value through \
                     NetworkConfig/SimConfig, or read it in crates/bench / \
                     src/bin and pass it down",
        },
        Rule {
            name: "panic-in-router-hot-path",
            summary: "unannotated unwrap/expect/panic in the router cores",
            patterns: &["unwrap", "expect", "panic!", "unreachable!", "assert!"],
            include: ROUTER_HOT_PATHS,
            exclude: &[],
            scope: CodeScope::OutsideTests,
            suppression: Suppression::AllowOrInvariant,
            advice: "a panic in the per-cycle router paths must encode a \
                     protocol invariant; state it in an // INVARIANT: comment \
                     or handle the case",
        },
        Rule {
            name: "unannotated-wake-site",
            summary: "wake-up calls in the gated engine without an INVARIANT note",
            patterns: &["wake_router", "wake_channel", "wake_pipe", "wake_injector"],
            include: &["crates/core/src/network.rs", "crates/core/src/shard.rs"],
            exclude: &[],
            scope: CodeScope::OutsideTests,
            suppression: Suppression::AllowOrInvariant,
            advice: "every wake-up site is load-bearing for the activity-gated \
                     engine's bit-identity with naive stepping (DESIGN.md \
                     \u{a7}3.13); state the wake rule it implements in an \
                     // INVARIANT: comment",
        },
        Rule {
            name: "println-in-core",
            summary: "println!/eprintln!/dbg! in library crates",
            patterns: &["println!", "eprintln!", "dbg!"],
            include: &[
                "crates/core/",
                "crates/sim/",
                "crates/services/",
                "crates/traffic/",
            ],
            exclude: &[],
            scope: CodeScope::OutsideTests,
            suppression: Suppression::AllowComment,
            advice: "library crates report through probes, reports, and \
                     exporters, not stdout; rendering belongs in crates/bench \
                     binaries (or return the string to the caller)",
        },
        Rule {
            name: "raw-thread-spawn",
            summary: "std::thread::spawn/scope outside the sanctioned parallel seams",
            patterns: &["thread::spawn", "thread::scope"],
            include: &["crates/", "src/", "tests/", "examples/"],
            exclude: &["crates/sim/src/exec.rs"],
            scope: CodeScope::OutsideTests,
            suppression: Suppression::AllowComment,
            advice: "all parallelism must flow through the executor seam \
                     (crates/sim/src/exec.rs, DESIGN.md \u{a7}3.18): SimPool \
                     batches, ShardedSimulation, and MultiChipSim all borrow \
                     its scoped workers; ad-hoc threads reintroduce \
                     scheduling-dependent behaviour",
        },
        Rule {
            name: "ungated-telemetry-record",
            summary: "direct telemetry record_* calls in the engine or router cores",
            patterns: &[
                "record_injected",
                "record_delivered",
                "record_forwarded",
                "record_alloc_conflict",
                "record_credit_stall",
                "record_preemption",
                "record_dropped",
                "record_misroute",
                "record_occupancy",
            ],
            include: &[
                "crates/core/src/network.rs",
                "crates/core/src/shard.rs",
                "crates/core/src/interface.rs",
                "crates/core/src/router/vc.rs",
                "crates/core/src/router/dropping.rs",
                "crates/core/src/router/deflection.rs",
                "crates/core/src/router/mod.rs",
            ],
            exclude: &[],
            scope: CodeScope::OutsideTests,
            suppression: Suppression::AllowComment,
            advice: "telemetry must be fed through the Probe seam \
                     (crates/core/src/probe.rs), whose presence check is the \
                     only gate keeping unprobed runs free; call the Probe \
                     trait hook and let NetworkProbe forward it to the \
                     TelemetryCollector",
        },
        Rule {
            name: "todo-in-shipping-code",
            summary: "todo!/unimplemented! outside tests",
            patterns: &["todo!", "unimplemented!"],
            include: &[],
            exclude: &["tests/"],
            scope: CodeScope::OutsideTests,
            suppression: Suppression::AllowComment,
            advice: "shipping code paths must be complete; finish the \
                     implementation or return an Error",
        },
    ]
}

/// Looks a rule up by name (for allow-comment validation).
pub fn rule_named(name: &str) -> Option<Rule> {
    all_rules().into_iter().find(|r| r.name == name)
}
