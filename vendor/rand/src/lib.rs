//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) subset of the `rand` 0.8 API that ocin uses:
//! [`Rng`] with `gen_range` / `gen_bool` / `gen`, [`SeedableRng`] with
//! `seed_from_u64` / `from_seed`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha12, but every property
//! the workspace relies on (determinism for a given seed, uniformity,
//! independence of per-node streams) holds. Nothing in ocin depends on
//! the exact upstream byte stream.

// The stand-in must behave identically everywhere the workspace
// runs, and nothing about RNG emulation needs raw memory access.
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (matches upstream's associated type shape).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// so that nearby seeds produce unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// The sampling interface: uniform ints over ranges, bools, floats.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// A sample of a standard-distributed value (bool, ints, f64 in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64_source(&mut || self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible from a uniform `u64` source (`Rng::gen`).
pub trait Standard {
    /// Builds a value from uniform 64-bit draws.
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
                src() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draws one sample using the provided uniform `u64` source.
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> T;
}

/// Uniform `u64` below `bound` by widening multiply (Lemire), with a
/// rejection loop to remove modulo bias.
fn uniform_below(bound: u64, src: &mut dyn FnMut() -> u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // # of biased low results
    loop {
        let x = src();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, src: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(span, src) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, src: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return src() as $t;
                }
                lo + uniform_below(span, src) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// SplitMix64: seed expander (public so tests can derive sub-seeds the
/// same way `seed_from_u64` does).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// The next expanded value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and fully deterministic for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn float_ranges() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
