//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of criterion's API that ocin's benches use —
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros
//! — backed by a simple wall-clock measurement loop: warm up briefly,
//! then time batches until the measurement budget is spent, and report
//! the mean and best time per iteration (plus throughput when
//! configured).

// Timing loops need no raw memory access; keep the vendored bench
// harness inside the workspace's no-unsafe hygiene gate.
#![deny(unsafe_code)]
// This stand-in mirrors upstream criterion's API shapes (owned
// `BenchmarkId` receivers, per-variant throughput arms), so the
// workspace's curated pedantic lints don't apply to it.
#![allow(clippy::needless_pass_by_value, clippy::match_same_arms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput units for a benchmark, reported as rate per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<P: Display>(function_id: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Filled in by [`Bencher::iter`]; read by the caller for reporting.
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `routine`, running it repeatedly until the measurement
    /// budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup budget is spent (at least once).
        let warm_start = Instant::now(); // ocin-lint: allow(wall-clock-in-sim) — criterion's whole job is wall-clock measurement; nothing here feeds simulation results
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.settings.warm_up_time {
                break;
            }
        }
        // Measure one iteration to size batches so that each batch is
        // long enough for the clock to be meaningful.
        let t0 = Instant::now(); // ocin-lint: allow(wall-clock-in-sim) — criterion's whole job is wall-clock measurement; nothing here feeds simulation results
        black_box(routine());
        let probe = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples = Vec::new();
        let mut total_iters = 0u64;
        let start = Instant::now(); // ocin-lint: allow(wall-clock-in-sim) — criterion's whole job is wall-clock measurement; nothing here feeds simulation results
        while start.elapsed() < self.settings.measurement_time
            || samples.len() < self.settings.sample_size.min(3)
        {
            let b0 = Instant::now(); // ocin-lint: allow(wall-clock-in-sim) — criterion's whole job is wall-clock measurement; nothing here feeds simulation results
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(b0.elapsed() / batch as u32);
            total_iters += batch;
            if samples.len() >= self.settings.sample_size
                && start.elapsed() >= self.settings.measurement_time
            {
                break;
            }
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let best = samples.iter().min().copied().unwrap_or(mean);
        self.result = Some(Measurement {
            mean,
            best,
            iters: total_iters,
        });
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }
}

fn report(id: &str, settings: &Settings, m: Measurement) {
    let rate = settings.throughput.map(|t| {
        let per_iter = match t {
            Throughput::Elements(n) => n,
            Throughput::Bytes(n) => n,
        };
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        let secs = m.mean.as_secs_f64().max(1e-12);
        format!("  {:.3e} {unit}", per_iter as f64 / secs)
    });
    println!(
        "bench: {id:<44} mean {:>12?}  best {:>12?}  ({} iters){}",
        m.mean,
        m.best,
        m.iters,
        rate.unwrap_or_default()
    );
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warmup budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` against `input` under `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut b = Bencher {
            settings: &self.settings,
            result: None,
        };
        routine(&mut b, input);
        if let Some(m) = b.result {
            report(&format!("{}/{}", self.name, id), &self.settings, m);
        }
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            settings: &self.settings,
            result: None,
        };
        routine(&mut b);
        if let Some(m) = b.result {
            report(&format!("{}/{}", self.name, id), &self.settings, m);
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op in the stand-in; kept
    /// for `criterion_main!` compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a settings-sharing group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: Settings::default(),
            _criterion: self,
        }
    }

    /// Benchmarks `routine` under `id` with default settings.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let settings = Settings::default();
        let mut b = Bencher {
            settings: &settings,
            result: None,
        };
        routine(&mut b);
        if let Some(m) = b.result {
            report(id, &settings, m);
        }
        self
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        acc
    }

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test_group");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("work", 100), &100u64, |b, &n| {
            b.iter(|| work(n));
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| work(10)));
    }
}
