//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of proptest's API that ocin's test suites use:
//! the [`proptest!`] macro, range/tuple/`Just`/`any` strategies,
//! [`Strategy::prop_map`], [`prop_oneof!`], `collection::{vec,
//! btree_set}`, `prop_assert*`, and `prop_assume!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated values
//!   in scope; the run is fully deterministic (the RNG is seeded from
//!   the test's name), so a failure always reproduces.
//! - **Regression files are not consulted.** `*.proptest-regressions`
//!   files remain in version control as documentation of historical
//!   failures.
//! - Default case count is 64 (upstream: 256) to keep `cargo test`
//!   fast; override per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

// The stand-in is pure safe Rust; keep it that way so the lint and
// CI hygiene gates cover the vendored test infrastructure too.
#![deny(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Marker returned by [`prop_assume!`] when a case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Per-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded by FNV-1a of the test's name so
/// every property explores a stable, reproducible sequence of cases.
pub fn new_test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`]'s combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between equally-weighted boxed alternatives.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// `any::<T>()`: the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);

/// Collection strategies.
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use super::{Strategy, TestRng};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// `Vec` of `size` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeSet` of (up to) `size` distinct elements from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.lo..=self.size.hi);
            let mut set = BTreeSet::new();
            // Small domains may not have `target` distinct values; bound
            // the attempts instead of looping forever.
            let mut attempts = 20 * target + 50;
            while set.len() < target && attempts > 0 {
                set.insert(self.element.generate(rng));
                attempts -= 1;
            }
            set
        }
    }
}

/// The proptest entry point: declares deterministic randomized tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
///     }
/// }
/// // In a test module the fn would carry #[test] above it.
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($args:tt)+) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __ocin_cfg: $crate::ProptestConfig = $cfg;
            let mut __ocin_rng = $crate::new_test_rng(stringify!($name));
            let mut __ocin_case: u32 = 0;
            let mut __ocin_rejects: u32 = 0;
            while __ocin_case < __ocin_cfg.cases {
                $crate::__proptest_bind!(__ocin_rng, $($args)+);
                // The closure exists so `prop_assume!` can early-return
                // a rejection without aborting the whole test fn.
                #[allow(clippy::redundant_closure_call)]
                let __ocin_result: ::std::result::Result<(), $crate::Rejected> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                match __ocin_result {
                    ::std::result::Result::Ok(()) => __ocin_case += 1,
                    ::std::result::Result::Err($crate::Rejected) => {
                        __ocin_rejects += 1;
                        assert!(
                            __ocin_rejects < 20 * __ocin_cfg.cases + 100,
                            "too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Internal: binds `pat in strategy` argument lists to generated values.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr,) => {
        $crate::__proptest_bind!($rng, $pat in $strat);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)+) => {
        $crate::__proptest_bind!($rng, $pat in $strat);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Equally-weighted choice between strategies (boxed internally).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)+) => { assert!($($t)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)+) => { assert_eq!($($t)+) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)+) => { assert_ne!($($t)+) };
}

/// Rejects the current case when the precondition fails; the runner
/// draws a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// Everything a proptest test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::new_test_rng("ranges");
        let s = (1usize..=4, 0u64..10, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..=4).contains(&a));
            assert!(b < 10);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = super::new_test_rng("oneof");
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = super::new_test_rng("collections");
        let v = crate::collection::vec(0u16..100, 2..5);
        let b = crate::collection::btree_set(0usize..256, 0..=3);
        for _ in 0..100 {
            let xs = v.generate(&mut rng);
            assert!((2..=4).contains(&xs.len()));
            let set = b.generate(&mut rng);
            assert!(set.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_binds_and_rejects(x in 0u32..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13, "assume filtered {}", x);
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn trailing_comma_and_patterns(
            (a, b) in (0u8..10, 0u8..10),
            v in crate::collection::vec(0u8..5, 1..3),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty());
        }
    }
}
