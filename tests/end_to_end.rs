//! End-to-end integration: every topology × flow-control combination
//! delivers traffic correctly under sustained load.

use ocin::core::{
    Error, FlowControl, Network, NetworkConfig, PacketSpec, RoutingAlg, ServiceClass, TopologySpec,
};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};

/// Drives `net` with `wl` for `cycles`, returning (injected, delivered).
fn drive(net: &mut Network, wl: &Workload, cycles: u64, seed: u64) -> (u64, u64) {
    let mut generation = wl.generator(seed);
    let n = net.topology().num_nodes();
    let mut injected = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for node in 0..n as u16 {
            if let Some(req) = generation.next_request(now, node.into()) {
                match net
                    .inject(&PacketSpec::new(node.into(), req.dst).payload_bits(req.payload_bits))
                {
                    Ok(_) => injected += 1,
                    Err(Error::InjectionBackpressure { .. }) => {}
                    Err(e) => panic!("unroutable workload packet: {e}"),
                }
            }
        }
        net.step();
        for node in 0..n as u16 {
            delivered += net.drain_delivered(node.into()).len() as u64;
        }
    }
    (injected, delivered)
}

#[test]
fn every_topology_delivers_under_load() {
    for spec in [
        TopologySpec::FoldedTorus { k: 4 },
        TopologySpec::Mesh { k: 4 },
        TopologySpec::FoldedTorus { k: 8 },
        TopologySpec::Mesh { k: 8 },
        TopologySpec::Ring { k: 8 },
    ] {
        let cfg = NetworkConfig::paper_baseline().with_topology(spec);
        let mut net = Network::new(cfg).unwrap();
        let (n, k) = (net.topology().num_nodes(), net.topology().radix());
        let wl = Workload::new(n, k, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.2 });
        let (injected, _) = drive(&mut net, &wl, 2_000, 1);
        assert!(net.drain(20_000), "{spec:?} failed to drain");
        let s = net.stats();
        assert_eq!(s.packets_delivered, injected, "{spec:?} lost packets");
    }
}

#[test]
fn every_flow_control_carries_traffic() {
    for fc in [
        FlowControl::VirtualChannel,
        FlowControl::Dropping,
        FlowControl::Deflection,
    ] {
        let cfg = NetworkConfig::paper_baseline().with_flow_control(fc);
        let mut net = Network::new(cfg).unwrap();
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.15 });
        let (injected, delivered) = drive(&mut net, &wl, 2_000, 2);
        assert!(injected > 300, "{fc:?} injected too little");
        let s = net.stats();
        match fc {
            FlowControl::VirtualChannel => {
                assert!(net.drain(10_000));
                assert_eq!(net.stats().packets_delivered, injected);
            }
            FlowControl::Dropping => {
                // Some loss is expected; delivered + dropped covers all
                // packets that finished their fate.
                assert!(delivered > 0);
                assert!(s.packets_dropped > 0, "dropping should drop at load");
                assert!(
                    net.stats().packets_delivered + net.stats().packets_dropped <= injected + 16
                );
            }
            FlowControl::Deflection => {
                assert!(net.drain(10_000), "deflection never drops, must drain");
                assert_eq!(net.stats().packets_delivered, injected);
            }
        }
    }
}

#[test]
fn adversarial_patterns_do_not_deadlock() {
    for pattern in [
        TrafficPattern::Tornado,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Shuffle,
    ] {
        for spec in [
            TopologySpec::FoldedTorus { k: 8 },
            TopologySpec::Mesh { k: 8 },
        ] {
            let cfg = NetworkConfig::paper_baseline().with_topology(spec);
            let mut net = Network::new(cfg).unwrap();
            let wl = Workload::new(64, 8, pattern.clone())
                .injection(InjectionProcess::Bernoulli { flit_rate: 0.3 });
            let (injected, _) = drive(&mut net, &wl, 1_500, 3);
            assert!(
                net.drain(60_000),
                "{spec:?}/{} did not drain (possible deadlock)",
                pattern.name()
            );
            assert_eq!(
                net.stats().packets_delivered,
                injected,
                "{}",
                pattern.name()
            );
        }
    }
}

#[test]
fn valiant_routing_delivers_everything() {
    for spec in [
        TopologySpec::FoldedTorus { k: 8 },
        TopologySpec::Mesh { k: 8 },
    ] {
        let cfg = NetworkConfig::paper_baseline()
            .with_topology(spec)
            .with_routing(RoutingAlg::Valiant);
        let mut net = Network::new(cfg).unwrap();
        let wl = Workload::new(64, 8, TrafficPattern::Tornado)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.25 });
        let (injected, _) = drive(&mut net, &wl, 1_500, 4);
        assert!(net.drain(60_000), "{spec:?} valiant did not drain");
        assert_eq!(net.stats().packets_delivered, injected);
    }
}

#[test]
fn per_class_packets_deliver_in_order_per_pair() {
    // Per-VC wormhole delivery preserves per-(src,dst,class,vc) order;
    // with a single-VC mask the whole stream is ordered.
    let mut cfg = NetworkConfig::paper_baseline();
    cfg.vc_plan.bulk_class0 = ocin::core::flit::VcMask::new(0b01);
    cfg.vc_plan.bulk_class1 = ocin::core::flit::VcMask::new(0b10);
    let mut net = Network::new(cfg).unwrap();
    let mut sent = Vec::new();
    for i in 0..30u64 {
        loop {
            match net.inject(
                &PacketSpec::new(1.into(), 2.into())
                    .payload_bits(64)
                    .data(vec![ocin::core::flit::Payload::from_u64(i)]),
            ) {
                Ok(id) => {
                    sent.push(id);
                    break;
                }
                Err(Error::InjectionBackpressure { .. }) => net.step(),
                Err(e) => panic!("{e}"),
            }
        }
    }
    assert!(net.drain(5_000));
    let got: Vec<u64> = net
        .drain_delivered(2.into())
        .iter()
        .map(|p| p.payloads[0].low_u64())
        .collect();
    assert_eq!(got, (0..30).collect::<Vec<u64>>());
}

#[test]
fn multi_flit_and_single_flit_mix() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    let mut injected = 0u64;
    for now in 0..500u64 {
        let bits = if now % 3 == 0 { 1024 } else { 64 };
        let src = (now % 16) as u16;
        let dst = ((now * 7 + 3) % 16) as u16;
        if src != dst
            && net
                .inject(
                    &PacketSpec::new(src.into(), dst.into())
                        .payload_bits(bits)
                        .class(if now % 5 == 0 {
                            ServiceClass::Priority
                        } else {
                            ServiceClass::Bulk
                        }),
                )
                .is_ok()
        {
            injected += 1;
        }
        net.step();
    }
    assert!(net.drain(10_000));
    assert_eq!(net.stats().packets_delivered, injected);
}

#[test]
fn stats_are_internally_consistent() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    let wl = Workload::new(16, 4, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: 0.2 });
    drive(&mut net, &wl, 1_000, 9);
    net.drain(10_000);
    let s = net.stats();
    // Each delivered single-flit packet crosses at least 1 link and at
    // least 2 routers (source + destination).
    assert!(s.energy.flit_hops >= 2 * s.packets_delivered);
    assert!(s.energy.link_flits >= s.packets_delivered);
    assert!(s.energy.hop_bits >= s.energy.flit_hops * 64);
    let loads = net.link_loads();
    let link_flits: u64 = loads.iter().map(|l| l.flits).sum();
    assert_eq!(link_flits, s.energy.link_flits);
}
