//! Executor equivalence: the two-level scheduler must be bit-transparent.
//!
//! `exec.rs` decides how many points run side by side and how many shard
//! workers each point's network is split across — decisions that may
//! change with worker count, budget caps, and batch size, but must never
//! change a result. The property test samples that whole decision space
//! (batch size × worker counts × budget caps × probe/journeys/telemetry
//! × flow control) against the serial `LoadSweep` reference; directed
//! tests pin the budget policy itself (sharded tails, explicit-shards
//! override) and the `MultiChipSim` threaded seam against the
//! sequential two-chip path.

use std::sync::Arc;

use ocin::core::ids::NodeId;
use ocin::core::{FlowControl, NetworkConfig, TopologySpec};
use ocin::services::GlobalAddress;
use ocin::sim::{Executor, LoadSweep, MultiChipSim, PointSpec, SimConfig, SimPool};
use ocin::traffic::{TrafficPattern, Workload};
use proptest::prelude::*;

const LOADS: [f64; 5] = [0.02, 0.05, 0.1, 0.2, 0.35];

const FLOW_CONTROLS: [FlowControl; 3] = [
    FlowControl::VirtualChannel,
    FlowControl::Dropping,
    FlowControl::Deflection,
];

fn sweep(fc: FlowControl, k: usize, pool: Arc<SimPool>) -> LoadSweep {
    LoadSweep::new(
        NetworkConfig::paper_baseline()
            .with_topology(TopologySpec::FoldedTorus { k })
            .with_flow_control(fc),
        SimConfig::quick(),
        Workload::new(k * k, k, TrafficPattern::Uniform),
    )
    .with_pool(pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any sampled executor shape reproduces the serial path bit for bit.
    #[test]
    fn executor_matches_serial_evaluation(
        fc_idx in 0usize..3,
        workers in 1usize..=8,
        cap in 0usize..=4, // 0 = no budget cap

        nloads in 1usize..=5,
        probe in any::<bool>(),
        journeys in any::<bool>(),
        telemetry in any::<bool>(),
    ) {
        let mut exec = Executor::new(workers);
        if cap > 0 {
            exec = exec.with_budget_cap(cap);
        }
        let s = sweep(FLOW_CONTROLS[fc_idx], 4, Arc::new(SimPool::with_executor(exec)))
            .with_probe(probe)
            .with_journeys(journeys)
            .with_telemetry(telemetry);
        let loads = &LOADS[..nloads];
        // Full-report equality, not just headline numbers.
        prop_assert_eq!(s.run(loads), s.run_serial(loads));
    }
}

/// A lone big point on an under-subscribed pool is given a real shard
/// budget — and still matches the unsharded serial evaluation.
#[test]
fn lone_big_point_is_sharded_and_bit_identical() {
    let small = SimConfig {
        warmup_cycles: 50,
        measure_cycles: 200,
        drain_cycles: 400,
        seed: 0xE4EC,
    };
    let pool = Arc::new(SimPool::with_workers(8));
    let s = LoadSweep::new(
        NetworkConfig::paper_baseline().with_topology(TopologySpec::FoldedTorus { k: 16 }),
        small,
        Workload::new(256, 16, TrafficPattern::Uniform),
    )
    .with_pool(Arc::clone(&pool));
    let point = s.point(0.05);
    // 8 idle workers, one k=16 point: budget 8 capped by usefulness at 4.
    let decisions = pool.exec_decisions();
    assert_eq!(decisions.len(), 1);
    assert_eq!(decisions[0].len(), 1);
    assert_eq!(decisions[0][0].shards, 4);
    assert_eq!(vec![point], s.run_serial(&[0.05]));
}

/// A full head wave stays point-parallel (budget 1 per point), and the
/// tail of the same batch gets the freed workers.
#[test]
fn head_and_tail_budgets_follow_the_wave_plan() {
    let pool = Arc::new(SimPool::with_workers(4));
    let s = sweep(FlowControl::VirtualChannel, 4, Arc::clone(&pool));
    s.run(&LOADS); // 5 points on 4 workers: wave 0 ×4, wave 1 ×1.
    let d = &pool.exec_decisions()[0];
    assert!(d[..4].iter().all(|d| d.wave == 0 && d.shards == 1));
    assert_eq!(d[4].wave, 1);
    // k=4 is too small to shard: the tail budget is usefulness-capped.
    assert_eq!(d[4].shards, 1);
}

/// An explicit `with_shards` request bypasses the budget policy, and
/// the result is still bit-identical to unsharded evaluation.
#[test]
fn explicit_shards_override_the_policy() {
    let pool = SimPool::with_workers(2);
    let spec = PointSpec::new(
        NetworkConfig::paper_baseline().with_topology(TopologySpec::FoldedTorus { k: 4 }),
        SimConfig::quick(),
        Workload::new(16, 4, TrafficPattern::Uniform),
        0.1,
    )
    .with_shards(3);
    let pooled = pool.run(std::slice::from_ref(&spec));
    assert_eq!(pool.exec_decisions()[0][0].shards, 3);
    assert_eq!(pooled[0], spec.evaluate_sharded(1));
}

/// Saturation search is invariant to the shard-budget policy: the same
/// worker count with budgets capped at 1 (the pre-executor pool) brackets
/// the same probes and lands on exactly the same load.
#[test]
fn saturation_search_is_budget_invariant() {
    let with_budgets = sweep(
        FlowControl::VirtualChannel,
        4,
        Arc::new(SimPool::with_workers(8)),
    );
    let capped = sweep(
        FlowControl::VirtualChannel,
        4,
        Arc::new(SimPool::with_workers(8).with_budget_cap(1)),
    );
    let a = with_budgets.saturation_load(0.05);
    let b = capped.saturation_load(0.05);
    assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
}

// ── MultiChipSim on the seam ─────────────────────────────────────────

fn addr(chip: u8, node: u16) -> GlobalAddress {
    GlobalAddress::new(chip, node.into())
}

fn two_chip_traffic(sys: &mut MultiChipSim) {
    // Bursty bidirectional cross-chip traffic (saturating the 4-cycle
    // link serializer and forcing arrival retries) plus local sends.
    for i in 0..24u64 {
        sys.send(
            addr(0, (i % 5) as u16),
            addr(1, 8 + (i % 6) as u16),
            vec![i, i * 3],
        );
        if i % 3 == 0 {
            sys.send(
                addr(1, (i % 7) as u16),
                addr(0, (13 - i % 4) as u16),
                vec![!i],
            );
        }
        if i % 5 == 0 {
            sys.send(
                addr(0, (i % 4) as u16),
                addr(0, 15 - (i % 3) as u16),
                vec![i],
            );
        }
    }
}

/// The threaded two-chip seam must leave the whole system — deliveries,
/// link counters, and both networks' statistics — bit-identical to
/// sequential stepping, including across interleaved step()/run() use.
#[test]
fn multichip_threaded_seam_matches_sequential() {
    let cfg = NetworkConfig::paper_baseline();
    let mut seq = MultiChipSim::new(cfg.clone(), NodeId::new(3), 4, 10).unwrap();
    let mut par = MultiChipSim::new(cfg, NodeId::new(3), 4, 10).unwrap();
    par.set_parallel_workers(2);
    two_chip_traffic(&mut seq);
    two_chip_traffic(&mut par);

    // Interleave seam entry/exit with sequential single-steps on the
    // parallel system: every boundary must be seamless.
    for _ in 0..40 {
        seq.step();
    }
    par.run_parallel(25);
    for _ in 0..5 {
        par.step();
    }
    par.run_parallel(10);
    assert_eq!(seq.cycle(), par.cycle());
    assert_eq!(seq.drain_delivered(), par.drain_delivered());

    // Second burst mid-flight, then run to completion on both paths.
    two_chip_traffic(&mut seq);
    two_chip_traffic(&mut par);
    for _ in 0..400 {
        seq.step();
    }
    par.run_parallel(400);
    assert_eq!(seq.cycle(), par.cycle());
    assert_eq!(seq.link_carried(), par.link_carried());
    let seq_got = seq.drain_delivered();
    let par_got = par.drain_delivered();
    assert!(!seq_got.is_empty());
    assert_eq!(seq_got, par_got);
    for c in 0..2u8 {
        assert_eq!(seq.chip(c).stats(), par.chip(c).stats());
        assert_eq!(seq.chip(c).cycle(), par.chip(c).cycle());
    }
}
