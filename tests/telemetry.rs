//! Time-resolved telemetry: exact reconciliation, shard byte-identity,
//! and zero perturbation.
//!
//! Three contracts (DESIGN.md §3.17):
//!
//! 1. **Reconciliation** — every field of the windowed series is a
//!    plain per-window sum, so summing any series across all windows
//!    must reproduce the whole-run probe total *exactly*, for every
//!    flow-control method, load, and fault rate.
//! 2. **Shard byte-identity** — telemetry is fed from the replayed
//!    probe event stream, so a sharded run's rendered exports (text,
//!    JSON, Perfetto) must be byte-identical to the sequential run's at
//!    any shard count.
//! 3. **Observation only** — attaching telemetry must not change a
//!    single measured bit of the report.

use ocin_core::probe::ProbeConfig;
use ocin_core::{FlowControl, NetworkConfig, TelemetryReport, TopologySpec};
use ocin_sim::{ShardedSimulation, SimConfig, SimReport, Simulation};
use ocin_traffic::{InjectionProcess, TrafficPattern, Workload};
use proptest::prelude::*;

fn quick_cfg(fc: FlowControl, k: usize) -> NetworkConfig {
    NetworkConfig::paper_baseline()
        .with_topology(TopologySpec::FoldedTorus { k })
        .with_flow_control(fc)
}

/// One quick telemetry-probed run with the sampled knobs applied,
/// stepped on `shards` worker threads (1 = the sequential reference).
fn run(
    fc: FlowControl,
    k: usize,
    injection: InjectionProcess,
    window: u64,
    fault_rate: f64,
    shards: usize,
) -> SimReport {
    let wl = Workload::new(k * k, k, TrafficPattern::Uniform).injection(injection);
    let mut sim = Simulation::new(quick_cfg(fc, k), SimConfig::quick())
        .expect("valid config")
        .with_workload(&wl)
        .with_probe(ProbeConfig::counters().with_telemetry(window));
    sim.network_mut().set_transient_fault_rate(fault_rate);
    ShardedSimulation::new(sim, shards).run()
}

fn telemetry(report: &SimReport) -> &TelemetryReport {
    report
        .metrics
        .as_ref()
        .expect("probed run carries metrics")
        .telemetry
        .as_ref()
        .expect("telemetry-probed run carries the report")
}

/// Asserts every windowed series sums exactly to the corresponding
/// whole-run probe total, and that the histogram populations agree with
/// the series' own latency counters.
fn assert_reconciles(report: &SimReport, label: &str) {
    let metrics = report.metrics.as_ref().expect("probed");
    let t = telemetry(report);
    let sum = |f: fn(&ocin_core::WindowRow) -> u64| t.windows.iter().map(f).sum::<u64>();
    let totals = [
        (
            "injected",
            sum(|w| w.packets_injected),
            metrics.totals.packets_injected,
        ),
        (
            "delivered",
            sum(|w| w.packets_delivered),
            metrics.totals.packets_delivered,
        ),
        (
            "forwarded",
            sum(|w| w.flits_forwarded),
            metrics.totals.flits_forwarded,
        ),
        (
            "dropped",
            sum(|w| w.packets_dropped),
            metrics.totals.packets_dropped,
        ),
        ("misroutes", sum(|w| w.misroutes), metrics.totals.misroutes),
        (
            "conflicts",
            sum(|w| w.alloc_conflicts),
            metrics.totals.alloc_conflicts,
        ),
        (
            "stalls",
            sum(|w| w.credit_stalls),
            metrics.totals.credit_stalls,
        ),
        (
            "preemptions",
            sum(|w| w.preemptions),
            metrics.totals.preemptions,
        ),
        (
            "occupancy",
            sum(|w| w.occupancy_integral),
            metrics.totals.occupancy_integral,
        ),
    ];
    for (name, series, total) in totals {
        assert_eq!(series, total, "{label}: window {name} sum != probe total");
    }
    // The quantile histograms saw exactly the delivered packets, per
    // class and per pair, and the per-window latency counters agree.
    for (c, h) in t.class_latency.iter().enumerate() {
        assert_eq!(
            h.count,
            t.windows.iter().map(|w| w.latency_count[c]).sum::<u64>(),
            "{label}: class {c} histogram count != window latency counts"
        );
        assert_eq!(
            h.sum,
            t.windows.iter().map(|w| w.latency_sum[c]).sum::<u64>(),
            "{label}: class {c} histogram sum != window latency sums"
        );
    }
    let hist_total: u64 = t.class_latency.iter().map(|h| h.count).sum();
    assert_eq!(
        hist_total, metrics.totals.packets_delivered,
        "{label}: histogram population"
    );
    let pair_total: u64 = t.pair_latency.iter().map(|(_, h)| h.count).sum();
    assert_eq!(
        pair_total, metrics.totals.packets_delivered,
        "{label}: pair population"
    );
    // The series is gap-free from window 0.
    for (i, w) in t.windows.iter().enumerate() {
        assert_eq!(w.index, i as u64, "{label}: window indices must be dense");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Window sums reconcile exactly with whole-run probe totals across
    /// flow control x load x faults x window width.
    #[test]
    fn window_series_reconciles_with_probe_totals(
        fc in prop_oneof![
            Just(FlowControl::VirtualChannel),
            Just(FlowControl::Dropping),
            Just(FlowControl::Deflection),
        ],
        load in 0.02f64..0.6,
        faulty in any::<bool>(),
        window in prop_oneof![Just(64u64), Just(256), Just(1024)],
    ) {
        let fault_rate = if faulty { 0.02 } else { 0.0 };
        let report = run(
            fc,
            4,
            InjectionProcess::Bernoulli { flit_rate: load },
            window,
            fault_rate,
            1,
        );
        assert_reconciles(
            &report,
            &format!("{fc:?} @ {load:.3}, faults={faulty}, window={window}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sharded telemetry is byte-identical to sequential: the replayed
    /// event stream feeds the collector the same multiset of events per
    /// window, so every rendered export matches to the byte.
    #[test]
    fn sharded_telemetry_is_byte_identical(
        fc in prop_oneof![
            Just(FlowControl::VirtualChannel),
            Just(FlowControl::Dropping),
        ],
        load in 0.05f64..0.4,
        shards in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let inj = InjectionProcess::Bernoulli { flit_rate: load };
        let seq = run(fc, 4, inj, 256, 0.0, 1);
        let shd = run(fc, 4, inj, 256, 0.0, shards);
        let (a, b) = (telemetry(&seq), telemetry(&shd));
        prop_assert_eq!(a, b, "telemetry reports differ ({:?} @ {:.3}, {} shards)", fc, load, shards);
        prop_assert_eq!(a.to_text(), b.to_text(), "text export differs");
        prop_assert_eq!(a.to_json(), b.to_json(), "JSON export differs");
        prop_assert_eq!(a.to_perfetto_json(), b.to_perfetto_json(), "Perfetto export differs");
        prop_assert_eq!(a.slo_table(), b.slo_table(), "SLO table differs");
    }
}

/// Shard byte-identity at every CI shard count on the 256-tile network,
/// under the bursty process the tail experiment uses.
#[test]
fn sharded_bursty_telemetry_matches_sequential_at_k16() {
    let inj = InjectionProcess::BurstyOnOff {
        flit_rate_on: 0.6,
        p_on_to_off: 0.01,
        p_off_to_on: 0.01,
    };
    let seq = run(FlowControl::VirtualChannel, 16, inj, 256, 0.0, 1);
    for shards in [2usize, 4, 8] {
        let shd = run(FlowControl::VirtualChannel, 16, inj, 256, 0.0, shards);
        assert_eq!(
            telemetry(&seq).to_text(),
            telemetry(&shd).to_text(),
            "k=16 text export differs at {shards} shards"
        );
        assert_eq!(
            telemetry(&seq).to_json(),
            telemetry(&shd).to_json(),
            "k=16 JSON export differs at {shards} shards"
        );
    }
}

/// Attaching telemetry must not change a single measured bit: the
/// telemetry-probed report with metrics stripped equals the unprobed
/// report, and equals the counters-only probed report likewise
/// stripped.
#[test]
fn telemetry_probe_is_observation_only() {
    for fc in [
        FlowControl::VirtualChannel,
        FlowControl::Dropping,
        FlowControl::Deflection,
    ] {
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.35 });
        let run_with = |probe: Option<ProbeConfig>| {
            let mut sim = Simulation::new(quick_cfg(fc, 4), SimConfig::quick())
                .expect("valid config")
                .with_workload(&wl);
            if let Some(pc) = probe {
                sim = sim.with_probe(pc);
            }
            sim.run()
        };
        let bare = run_with(None);
        let counters = run_with(Some(ProbeConfig::counters()));
        let mut telemetry_probed = run_with(Some(ProbeConfig::counters().with_telemetry(0)));
        assert!(
            telemetry_probed
                .metrics
                .as_ref()
                .is_some_and(|m| m.telemetry.is_some()),
            "telemetry-probed run must carry the report ({fc:?})"
        );
        assert!(
            counters
                .metrics
                .as_ref()
                .is_some_and(|m| m.telemetry.is_none()),
            "counters-only run must not pay for telemetry ({fc:?})"
        );
        let mut counters = counters;
        counters.metrics = None;
        telemetry_probed.metrics = None;
        assert_eq!(
            bare, telemetry_probed,
            "telemetry perturbed the run ({fc:?})"
        );
        assert_eq!(bare, counters, "counters probe perturbed the run ({fc:?})");
    }
}

/// The acceptance scenario: a fixed-seed bursty k = 16 run yields a
/// deterministic SLO table whose p99.9 strictly exceeds its p50, a
/// window series that reconciles exactly, and — overdriven — a detected
/// saturation onset; two invocations render byte-identical exports.
#[test]
fn bursty_k16_tail_and_onset_acceptance() {
    let bursty = InjectionProcess::BurstyOnOff {
        flit_rate_on: 0.6,
        p_on_to_off: 0.01,
        p_off_to_on: 0.01,
    };
    let a = run(FlowControl::VirtualChannel, 16, bursty, 256, 0.0, 1);
    let b = run(FlowControl::VirtualChannel, 16, bursty, 256, 0.0, 1);
    let t = telemetry(&a);
    assert_eq!(
        t.to_text(),
        telemetry(&b).to_text(),
        "reruns must render identically"
    );
    assert_eq!(t.to_json(), telemetry(&b).to_json());
    assert_eq!(t.slo_table(), telemetry(&b).slo_table());

    let agg = t.aggregate_latency();
    assert!(agg.count > 1_000, "bursty run must deliver real traffic");
    assert!(agg.is_exact(), "latencies sit below the exact horizon");
    assert!(
        agg.percentile(99.9) > agg.percentile(50.0),
        "bursty tail p99.9 ({}) must exceed p50 ({})",
        agg.percentile(99.9),
        agg.percentile(50.0),
    );
    assert_reconciles(&a, "bursty k16");

    // Overdriven: mean load well past the bisection cap grows the
    // backlog window over window.
    let over = run(
        FlowControl::VirtualChannel,
        16,
        InjectionProcess::BurstyOnOff {
            flit_rate_on: 1.4,
            p_on_to_off: 0.005,
            p_off_to_on: 0.02,
        },
        256,
        0.0,
        1,
    );
    assert!(
        telemetry(&over).saturation_onset(3, 1).is_some(),
        "overdriven bursty load must trip the saturation-onset detector"
    );
    // The sub-saturation run must not.
    let calm = run(
        FlowControl::VirtualChannel,
        16,
        InjectionProcess::Bernoulli { flit_rate: 0.1 },
        256,
        0.0,
        1,
    );
    assert_eq!(
        telemetry(&calm).saturation_onset(3, 8),
        None,
        "a calm run must not trip the detector"
    );
}
