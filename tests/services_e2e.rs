//! The §2.2 service layers running over the real network.

use ocin::core::ids::{Cycle, NodeId};
use ocin::core::interface::DeliveredPacket;
use ocin::core::{Network, NetworkConfig, PacketSpec};
use ocin::services::{
    LogicalWireRx, LogicalWireTx, MemoryClient, MemoryOp, MemoryServer, Message, ReliableReceiver,
    ReliableSender, RetryConfig, StreamReceiver, StreamSender,
};

fn send(net: &mut Network, src: NodeId, msg: &Message) {
    net.inject(
        &PacketSpec::new(src, msg.dst)
            .payload_bits(msg.payload_bits)
            .class(msg.class)
            .data(msg.payloads.clone()),
    )
    .expect("service messages route");
}

#[test]
fn logical_wire_tracks_state_changes() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    let (a, b) = (NodeId::new(0), NodeId::new(9));
    let mut tx = LogicalWireTx::new(b, 3, 8);
    let mut rx = LogicalWireRx::new(3);

    let states = [0x01u64, 0x80, 0xFF, 0x00, 0x5A];
    let mut applied = Vec::new();
    let mut idx = 0;
    for now in 0..400u64 {
        if now % 40 == 0 && idx < states.len() {
            if let Some(msg) = tx.observe(states[idx]) {
                send(&mut net, a, &msg);
            }
            idx += 1;
        }
        net.step();
        for pkt in net.drain_delivered(b) {
            if rx.on_packet(&pkt, now) {
                applied.push(rx.state());
            }
        }
    }
    // 0x00 -> first observe of 0x01 counts; every change applied in order.
    assert_eq!(applied, vec![0x01, 0x80, 0xFF, 0x00, 0x5A]);
    assert_eq!(tx.updates_sent, 5);
    assert_eq!(rx.updates_applied, 5);
}

#[test]
fn memory_service_round_trips_over_network() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    let (cpu, memory) = (NodeId::new(2), NodeId::new(13));
    let mut client = MemoryClient::new(memory);
    let mut server = MemoryServer::new(5);

    // Issue 8 writes then 8 reads, one outstanding at a time.
    let mut phase = 0usize;
    for now in 0..2_000u64 {
        if client.outstanding() == 0 && phase < 16 {
            let op = if phase < 8 {
                MemoryOp::Write {
                    addr: phase as u32,
                    value: 0xA000 + phase as u64,
                }
            } else {
                MemoryOp::Read {
                    addr: (phase - 8) as u32,
                }
            };
            let (msg, _) = client.issue(op, now);
            send(&mut net, cpu, &msg);
            phase += 1;
        }
        net.step();
        for pkt in net.drain_delivered(memory) {
            server.on_packet(&pkt, now);
        }
        for msg in server.poll(now) {
            send(&mut net, memory, &msg);
        }
        for pkt in net.drain_delivered(cpu) {
            client.on_packet(&pkt, now);
        }
        if client.completed.len() == 16 {
            break;
        }
    }
    assert_eq!(client.completed.len(), 16);
    let reads: Vec<_> = client.completed.iter().filter_map(|r| r.data).collect();
    assert_eq!(reads, (0..8).map(|i| 0xA000 + i).collect::<Vec<u64>>());
    // Round trips include network + access latency.
    assert!(client.completed.iter().all(|r| r.latency >= 5));
}

#[test]
fn stream_flow_control_never_overruns() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    let (a, b) = (NodeId::new(4), NodeId::new(11));
    let window = 9u32;
    let mut tx = StreamSender::new(b, 1, window);
    let mut rx = StreamReceiver::new(a, 1, window);
    tx.offer(0..200u64);

    let mut consumed = Vec::new();
    for _now in 0..5_000u64 {
        if let Some(msg) = tx.poll() {
            send(&mut net, a, &msg);
        }
        net.step();
        for pkt in net.drain_delivered(b) {
            assert!(rx.on_packet(&pkt), "stream packets only");
        }
        // The consumer reads at most 2 words per cycle (slower than the
        // producer) — back-pressure must hold the stream together.
        consumed.extend(rx.read(2));
        if let Some(credit) = rx.poll_credits() {
            send(&mut net, b, &credit);
        }
        for pkt in net.drain_delivered(a) {
            assert!(tx.on_packet(&pkt));
        }
        if consumed.len() == 200 {
            break;
        }
    }
    assert_eq!(consumed, (0..200u64).collect::<Vec<_>>());
    assert_eq!(tx.backlog(), 0);
}

#[test]
fn reliable_channel_survives_transient_upsets() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    net.set_transient_fault_rate(0.05);
    let (a, b) = (NodeId::new(0), NodeId::new(15));
    let mut tx = ReliableSender::new(
        b,
        2,
        RetryConfig {
            timeout: 80,
            window: 6,
            max_attempts: 0,
        },
    );
    let mut rx = ReliableReceiver::new(a, 2);
    for i in 0..30u64 {
        tx.send(vec![i, !i]);
    }
    let mut got: Vec<Vec<u64>> = Vec::new();
    let mut now: Cycle = 0;
    while got.len() < 30 && now < 60_000 {
        for msg in tx.poll(now) {
            send(&mut net, a, &msg);
        }
        net.step();
        now = net.cycle();
        for pkt in net.drain_delivered(b) {
            if let Some(ack) = rx.on_packet(&pkt) {
                send(&mut net, b, &ack);
            }
        }
        for pkt in net.drain_delivered(a) {
            tx.on_packet(&pkt);
        }
        got.extend(rx.drain());
    }
    assert_eq!(got.len(), 30, "all datagrams recovered");
    let mut firsts: Vec<u64> = got.iter().map(|d| d[0]).collect();
    firsts.sort_unstable();
    assert_eq!(firsts, (0..30).collect::<Vec<u64>>());
    for d in &got {
        assert_eq!(d[1], !d[0], "payload integrity");
    }
    // With a 5% upset rate across ~5 links, retries must have occurred.
    assert!(tx.retransmissions > 0 || rx.crc_failures == 0);
}

fn _assert_packet_fields(p: &DeliveredPacket) {
    // Compile-time shape check used by the helpers above.
    let _ = (p.id, p.src, p.dst, p.corrupted);
}
