//! Probe observability: zero perturbation when attached, exact
//! accounting when read.
//!
//! The contract under test is the one the whole subsystem rests on:
//! probes observe, they never decide. A probed run must produce a
//! report whose every measurement is bit-identical to the unprobed run
//! of the same configuration and seed, and the probe's own counters
//! must reconcile exactly with the simulator's independent statistics.

use ocin_core::ids::NodeId;
use ocin_core::{
    EventKind, FlowControl, Network, NetworkConfig, NetworkProbe, PacketSpec, ProbeConfig,
    TopologySpec,
};
use ocin_sim::{LatencyReport, LoadSweep, SimConfig, SimReport, Simulation};
use ocin_traffic::{InjectionProcess, TrafficPattern, Workload};

fn quick_cfg() -> NetworkConfig {
    NetworkConfig::paper_baseline().with_topology(TopologySpec::FoldedTorus { k: 4 })
}

fn quick_run(net_cfg: NetworkConfig, probe: Option<ProbeConfig>) -> SimReport {
    let wl = Workload::new(16, 4, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: 0.35 });
    let mut sim = Simulation::new(net_cfg, SimConfig::quick())
        .expect("valid config")
        .with_workload(&wl);
    if let Some(pc) = probe {
        sim = sim.with_probe(pc);
    }
    sim.run()
}

/// The probe-overhead regression gate: attaching a full probe
/// (counters, trace, *and* journey collector) must not change a single
/// measured bit.
#[test]
fn probed_report_is_bit_identical_to_unprobed() {
    for fc in [
        FlowControl::VirtualChannel,
        FlowControl::Dropping,
        FlowControl::Deflection,
    ] {
        let cfg = quick_cfg().with_flow_control(fc);
        let bare = quick_run(cfg.clone(), None);
        let mut probed = quick_run(
            cfg,
            Some(ProbeConfig::counters().with_trace(1024).with_journeys(256)),
        );
        let metrics = probed
            .metrics
            .as_ref()
            .expect("probed run must carry metrics");
        assert!(
            metrics.decomposition.is_some(),
            "journeyed run must carry a decomposition ({fc:?})"
        );
        probed.metrics = None;
        assert_eq!(bare, probed, "probe perturbed the simulation ({fc:?})");
    }
}

/// Per-router probe counters must sum to the simulator's own global
/// statistics, for every flow-control method.
#[test]
fn probe_counters_reconcile_with_sim_report() {
    for fc in [
        FlowControl::VirtualChannel,
        FlowControl::Dropping,
        FlowControl::Deflection,
    ] {
        let report = quick_run(
            quick_cfg().with_flow_control(fc),
            Some(ProbeConfig::counters()),
        );
        let metrics = report.metrics.as_ref().expect("probed");
        assert_eq!(
            metrics.totals.flits_forwarded,
            metrics
                .routers
                .iter()
                .map(ocin_core::RouterProbe::flits_forwarded)
                .sum(),
            "totals must be the sum of the per-router blocks ({fc:?})"
        );
        assert_eq!(
            metrics.totals.packets_dropped, report.packets_dropped,
            "probe drops vs SimReport ({fc:?})"
        );
        assert_eq!(
            metrics.totals.misroutes, report.deflections,
            "probe misroutes vs SimReport ({fc:?})"
        );
        // Whole-run conservation: everything injected either arrived,
        // was dropped, or is still in flight at the horizon.
        assert!(
            metrics.totals.packets_delivered + metrics.totals.packets_dropped
                <= metrics.totals.packets_injected,
            "delivered {} + dropped {} exceeds injected {} ({fc:?})",
            metrics.totals.packets_delivered,
            metrics.totals.packets_dropped,
            metrics.totals.packets_injected,
        );
    }
}

/// Counter and histogram accounting at a known tiny workload: one
/// packet from node 0 to its east neighbour takes exactly 5 cycles and
/// 2 hops (tile-out at the source, tile-in at the destination).
#[test]
fn single_packet_accounting_is_exact() {
    let mut net = Network::new(quick_cfg()).expect("valid config");
    net.attach_probe(NetworkProbe::for_network(
        net.config(),
        ProbeConfig::counters().with_trace(64),
    ));
    net.inject(&PacketSpec::new(0.into(), 1.into()).payload_bits(64))
        .expect("inject");
    net.drain(100);
    let cycles = net.cycle();
    let metrics = net.take_probe().expect("attached").into_metrics(cycles);

    assert_eq!(metrics.totals.packets_injected, 1);
    assert_eq!(metrics.totals.packets_delivered, 1);
    // One hop east plus the launch out of the source router.
    assert_eq!(metrics.totals.flits_forwarded, net.stats().energy.flit_hops);
    let (pair, hist) = &metrics.pair_histograms[0];
    assert_eq!(*pair, (NodeId::new(0), NodeId::new(1)));
    assert_eq!(hist.count, 1);
    assert_eq!(hist.min, 5, "zero-load latency of one hop is 5 cycles");
    assert_eq!(hist.max, 5);
    assert_eq!(hist.mean(), 5.0);

    // The trace saw the full life of the packet, in causal order.
    let kinds: Vec<EventKind> = metrics.trace.events().map(|e| e.kind).collect();
    assert_eq!(kinds.first(), Some(&EventKind::Inject));
    assert_eq!(kinds.last(), Some(&EventKind::Deliver));
    assert!(kinds.contains(&EventKind::Hop));

    // The histogram summary survives the conversion into a sim-layer
    // latency report.
    let lr = LatencyReport::from_histogram(hist);
    assert_eq!(lr.count, 1);
    assert_eq!(lr.mean, 5.0);
    assert_eq!(lr.min, 5.0);
    assert_eq!(lr.max, 5.0);
}

/// Probed sweep points carry metrics without disturbing determinism:
/// the same sweep without probes produces the same measurements, and
/// the pool caches probed and unprobed points separately.
#[test]
fn probed_sweep_matches_unprobed_measurements() {
    let sweep = |probe: bool| {
        LoadSweep::new(
            quick_cfg(),
            SimConfig::quick(),
            Workload::new(16, 4, TrafficPattern::Uniform),
        )
        .with_probe(probe)
        .run(&[0.1, 0.3])
    };
    let bare = sweep(false);
    let probed = sweep(true);
    assert_eq!(bare.len(), probed.len());
    for (b, p) in bare.iter().zip(&probed) {
        assert!(p.report.metrics.is_some() && b.report.metrics.is_none());
        let mut stripped = p.report.clone();
        stripped.metrics = None;
        assert_eq!(b.report, stripped, "probe changed a sweep measurement");
        // The probe's aggregate histogram mean agrees with the sampled
        // mean to within histogram arithmetic (both are exact means of
        // the same packet population over the whole run vs the window,
        // so require the window population to be a subset: the probe
        // observed at least as many packets).
        let metrics = p.report.metrics.as_ref().unwrap();
        assert!(
            metrics.totals.packets_delivered >= p.report.packets_delivered,
            "probe saw fewer deliveries than the measurement window"
        );
    }
}
