//! The parallel sweep engine must be bit-identical to the serial path.
//!
//! Every simulation point derives its RNG seed from `(base seed, load)`
//! alone, so evaluation order, worker count, and cache hits must not
//! change a single bit of any report. These tests pin that contract.

use std::sync::Arc;

use ocin::core::{NetworkConfig, TopologySpec};
use ocin::sim::{derive_seed, LoadSweep, SimConfig, SimPool};
use ocin::traffic::{TrafficPattern, Workload};

const LOADS: [f64; 9] = [0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.55, 0.7];

fn sweep(pool: &Arc<SimPool>, spec: TopologySpec) -> LoadSweep {
    LoadSweep::new(
        NetworkConfig::paper_baseline().with_topology(spec),
        SimConfig::quick(),
        Workload::new(16, 4, TrafficPattern::Uniform),
    )
    .with_pool(Arc::clone(pool))
}

#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let pool = Arc::new(SimPool::with_workers(4));
    let s = sweep(&pool, TopologySpec::FoldedTorus { k: 4 });
    let parallel = s.run(&LOADS);
    let serial = s.run_serial(&LOADS);
    assert_eq!(parallel.len(), LOADS.len());
    // Full-report equality: every latency percentile, energy counter,
    // and per-flow statistic must match, not just the headline numbers.
    assert_eq!(parallel, serial);
}

#[test]
fn cached_and_single_point_paths_agree() {
    let pool = Arc::new(SimPool::with_workers(3));
    let s = sweep(&pool, TopologySpec::Mesh { k: 4 });
    let batch = s.run(&LOADS);
    // Re-running the batch serves from cache; single points must agree.
    assert_eq!(s.run(&LOADS), batch);
    for (i, &load) in LOADS.iter().enumerate() {
        assert_eq!(s.point(load), batch[i]);
    }
    assert_eq!(pool.cached_points(), LOADS.len());
}

#[test]
fn pools_share_points_across_sweeps() {
    let pool = Arc::new(SimPool::with_workers(2));
    let a = sweep(&pool, TopologySpec::FoldedTorus { k: 4 });
    let b = sweep(&pool, TopologySpec::FoldedTorus { k: 4 });
    a.run(&LOADS[..4]);
    let before = pool.cached_points();
    // Same template, same loads: nothing new to compute.
    b.run(&LOADS[..4]);
    assert_eq!(pool.cached_points(), before);
}

#[test]
fn seed_derivation_is_order_free() {
    let per_load: Vec<u64> = LOADS.iter().map(|&l| derive_seed(7, l)).collect();
    let reversed: Vec<u64> = LOADS.iter().rev().map(|&l| derive_seed(7, l)).collect();
    assert_eq!(per_load, reversed.into_iter().rev().collect::<Vec<_>>());
    // Distinct loads get distinct streams.
    for (i, a) in per_load.iter().enumerate() {
        for b in &per_load[i + 1..] {
            assert_ne!(a, b);
        }
    }
}
