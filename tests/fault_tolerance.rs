//! Fault-tolerance matrix (paper §2.5) over the full network.

use ocin::core::fault::{FaultKind, LinkFault};
use ocin::core::flit::Payload;
use ocin::core::{Network, NetworkConfig, PacketSpec};

/// Sends a marked packet across every pair and returns (delivered,
/// corrupted counts).
fn census(net: &mut Network) -> (usize, usize) {
    let n = net.topology().num_nodes() as u16;
    let mut sent = 0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                // Alternating pattern exercises both stuck-at polarities.
                let p = Payload([0xAAAA_AAAA_5555_5555; 4]);
                net.inject(&PacketSpec::new(s.into(), d.into()).data(vec![p]))
                    .expect("baseline accepts all pairs");
                sent += 1;
            }
        }
    }
    assert!(net.drain(50_000));
    let mut delivered = 0;
    let mut corrupted = 0;
    for d in 0..n {
        for pkt in net.drain_delivered(d.into()) {
            delivered += 1;
            if pkt.corrupted || pkt.payloads[0] != Payload([0xAAAA_AAAA_5555_5555; 4]) {
                corrupted += 1;
            }
        }
    }
    assert_eq!(delivered, sent);
    (delivered, corrupted)
}

fn fault_every_link(net: &mut Network, wires: &[usize]) {
    for (node, dir) in net.topology().channels() {
        for (i, &w) in wires.iter().enumerate() {
            net.inject_link_fault(
                node,
                dir,
                LinkFault {
                    wire: w,
                    kind: if i % 2 == 0 {
                        FaultKind::StuckAtOne
                    } else {
                        FaultKind::StuckAtZero
                    },
                },
            )
            .unwrap();
        }
    }
}

#[test]
fn healthy_network_delivers_intact() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    let (_, corrupted) = census(&mut net);
    assert_eq!(corrupted, 0);
}

#[test]
fn single_fault_per_link_is_masked_by_steering() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    fault_every_link(&mut net, &[77]);
    let (_, corrupted) = census(&mut net);
    assert_eq!(corrupted, 0, "spare + steering must mask one fault/link");
}

#[test]
fn without_steering_the_chip_corrupts() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    fault_every_link(&mut net, &[77]);
    net.set_steering(false);
    let (delivered, corrupted) = census(&mut net);
    assert!(
        corrupted > delivered / 2,
        "corrupted {corrupted}/{delivered}"
    );
}

#[test]
fn two_faults_exceed_one_spare() {
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    // After the spare absorbs wire 40, logical bit 90 lands on faulty
    // wire 91; the census pattern has bit 90 set, so the stuck-at-0
    // shows.
    fault_every_link(&mut net, &[40, 91]);
    let (_, corrupted) = census(&mut net);
    assert!(
        corrupted > 0,
        "second fault must spill past the single spare"
    );
}

#[test]
fn corruption_is_always_flagged() {
    // Whenever payload bits differ from what was sent, the corrupted
    // flag must be set (the fault model never corrupts silently).
    let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
    fault_every_link(&mut net, &[13]);
    net.set_steering(false);
    let n = net.topology().num_nodes() as u16;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                net.inject(&PacketSpec::new(s.into(), d.into()).data(vec![Payload([u64::MAX; 4])]))
                    .unwrap();
            }
        }
    }
    assert!(net.drain(50_000));
    for d in 0..n {
        for pkt in net.drain_delivered(d.into()) {
            if pkt.payloads[0] != Payload([u64::MAX; 4]) {
                assert!(pkt.corrupted, "silent corruption of {:?}", pkt.id);
            }
        }
    }
}

#[test]
fn transient_rate_zero_is_clean_and_deterministic() {
    let run = |rate: f64| {
        let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
        net.set_transient_fault_rate(rate);
        census(&mut net)
    };
    let (_, clean) = run(0.0);
    assert_eq!(clean, 0);
    let (_, noisy) = run(0.25);
    assert!(noisy > 0, "a 25% upset rate must corrupt something");
    // Determinism: same seed, same corruption count.
    let (_, noisy2) = run(0.25);
    assert_eq!(noisy, noisy2);
}
