//! Cross-crate consistency: the closed-form physical models in
//! `ocin-phys` must agree with exact enumeration over `ocin-core`
//! topologies and with flit-level simulation.

use ocin::core::{FoldedTorus2D, Mesh2D, NetworkConfig, Topology, TopologySpec};
use ocin::phys::{
    NetworkEnergyModel, RouterAreaModel, SignalingScheme, Technology, TopologyPowerModel,
};
use ocin::sim::{SimConfig, Simulation};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};

/// Corrects an all-ordered-pairs average (the closed forms' convention)
/// to the distinct-pairs average the topology enumeration reports.
fn distinct_pairs(all_pairs_avg: f64, n: usize) -> f64 {
    all_pairs_avg * n as f64 / (n as f64 - 1.0)
}

#[test]
fn closed_form_hops_match_enumeration() {
    for k in [4usize, 8] {
        let n = k * k;
        let mesh_cf = TopologyPowerModel::mesh(k);
        let mesh = Mesh2D::new(k);
        assert!(
            (distinct_pairs(mesh_cf.avg_hops, n) - mesh.avg_min_hops()).abs() < 1e-9,
            "mesh k={k}"
        );
        let torus_cf = TopologyPowerModel::folded_torus(k);
        let torus = FoldedTorus2D::new(k);
        assert!(
            (distinct_pairs(torus_cf.avg_hops, n) - torus.avg_min_hops()).abs() < 1e-9,
            "torus k={k}"
        );
    }
}

#[test]
fn closed_form_distance_is_close_to_enumeration() {
    // The distance closed form assumes minimal routes use folded links
    // uniformly; exact enumeration differs by a few percent.
    for k in [4usize, 8] {
        let n = k * k;
        let cf = distinct_pairs(TopologyPowerModel::folded_torus(k).avg_distance_pitches, n);
        let exact = FoldedTorus2D::new(k).avg_min_distance_pitches();
        let err = (cf - exact).abs() / exact;
        assert!(err < 0.10, "k={k}: closed form {cf} vs exact {exact}");
    }
}

#[test]
fn bisection_matches_topology_methods() {
    for k in [4usize, 8] {
        assert_eq!(
            TopologyPowerModel::mesh(k).bisection_channels,
            Mesh2D::new(k).bisection_channels()
        );
        assert_eq!(
            TopologyPowerModel::folded_torus(k).bisection_channels,
            FoldedTorus2D::new(k).bisection_channels()
        );
    }
}

#[test]
fn simulated_energy_matches_analytic_within_tolerance() {
    // At light load the simulator's per-packet hop/distance counters must
    // land near the all-pairs enumeration (uniform traffic samples all
    // pairs).
    let tech = Technology::dac2001();
    let model = NetworkEnergyModel::new(&tech, SignalingScheme::FullSwing);
    for (spec, topo) in [
        (
            TopologySpec::Mesh { k: 4 },
            Box::new(Mesh2D::new(4)) as Box<dyn Topology>,
        ),
        (
            TopologySpec::FoldedTorus { k: 4 },
            Box::new(FoldedTorus2D::new(4)) as Box<dyn Topology>,
        ),
    ] {
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.1 });
        let report = Simulation::new(
            NetworkConfig::paper_baseline().with_topology(spec),
            SimConfig::quick(),
        )
        .unwrap()
        .with_workload(&wl)
        .run();
        let (hop_bits, bit_pitches) = Simulation::energy_per_packet(&report);
        // Simulated hops include source + destination router traversals:
        // enumerated link hops + 1 ejection traversal... the counter
        // counts one traversal per launch (links + eject), so expected =
        // avg_min_hops + 1 (eject) in 300-active-bit units.
        let sim_hops = hop_bits / 300.0;
        let expected_hops = topo.avg_min_hops() + 1.0;
        let err = (sim_hops - expected_hops).abs() / expected_hops;
        assert!(
            err < 0.05,
            "{spec:?}: sim hops {sim_hops} vs {expected_hops}"
        );
        let sim_dist = bit_pitches / 300.0;
        let expected_dist = topo.avg_min_distance_pitches();
        let err = (sim_dist - expected_dist).abs() / expected_dist;
        assert!(
            err < 0.05,
            "{spec:?}: sim dist {sim_dist} vs {expected_dist}"
        );
        // And the joule conversion is finite and positive.
        let pj = model.total_energy_pj(hop_bits as u64, bit_pitches);
        assert!(pj > 0.0 && pj.is_finite());
    }
}

#[test]
fn area_model_tracks_configuration() {
    let tech = Technology::dac2001();
    let cfg = NetworkConfig::paper_baseline();
    // The config's buffer budget and the area model's default agree.
    let model = RouterAreaModel::with_buffering(
        cfg.vc_plan.num_vcs,
        cfg.buf_depth,
        ocin::core::flit::FLIT_TOTAL_BITS,
    );
    assert_eq!(model.buffer_bits_per_edge, cfg.buffer_bits_per_input());
    assert_eq!(
        model.buffer_bits_per_edge,
        RouterAreaModel::paper_baseline().buffer_bits_per_edge
    );
    assert!((model.fraction_of_tile(&tech) - 0.064).abs() < 0.005);
}
