//! Engine equivalence: the activity-gated scheduler vs naive stepping.
//!
//! The gated engine's contract (DESIGN.md §3.13) is that skipping
//! quiescent routers, idle channels, and empty pipes is *invisible*:
//! for any configuration, the gated and naive engines must produce
//! bit-identical reports — same latency samples, same counters, same
//! rendered metrics JSON, same probe-derived artifacts. The property
//! test below samples across flow-control methods, offered loads,
//! probing/journey collection, transient faults, and static-flow
//! reservations; a directed test checks the engines even compose, i.e.
//! a run that flips modes midway matches both pure runs.

use ocin::core::probe::ProbeConfig;
use ocin::core::{FlowControl, Network, NetworkConfig, PacketSpec, StaticFlowSpec, TopologySpec};
use ocin::sim::{SimConfig, SimReport, Simulation};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};
use proptest::prelude::*;

fn quick_cfg(fc: FlowControl, k: usize) -> NetworkConfig {
    NetworkConfig::paper_baseline()
        .with_topology(TopologySpec::FoldedTorus { k })
        .with_flow_control(fc)
}

/// One quick simulation with every sampled knob applied.
#[allow(clippy::too_many_arguments)]
fn run(
    fc: FlowControl,
    k: usize,
    load: f64,
    probed: bool,
    journeys: bool,
    fault_rate: f64,
    reserved: bool,
    naive: bool,
) -> SimReport {
    let mut cfg = quick_cfg(fc, k);
    if reserved {
        cfg = cfg
            .with_reservation_period(8)
            .with_static_flow(StaticFlowSpec::new(0.into(), 5.into(), 1, 64));
    }
    let wl = Workload::new(k * k, k, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: load });
    let mut sim = Simulation::new(cfg, SimConfig::quick())
        .expect("valid config")
        .with_workload(&wl);
    if probed {
        let pc = if journeys {
            ProbeConfig::counters().with_journeys(512)
        } else {
            ProbeConfig::counters()
        };
        sim = sim.with_probe(pc);
    }
    sim.network_mut().set_transient_fault_rate(fault_rate);
    sim.network_mut().set_naive_stepping(naive);
    sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For a random configuration, the gated engine's report — and its
    /// rendered metrics JSON, when probed — is bit-identical to the
    /// naive engine's.
    #[test]
    fn gated_engine_matches_naive_reference(
        fc in prop_oneof![
            Just(FlowControl::VirtualChannel),
            Just(FlowControl::Dropping),
            Just(FlowControl::Deflection),
        ],
        load in 0.02f64..0.6,
        probed in any::<bool>(),
        journeys in any::<bool>(),
        faulty in any::<bool>(),
        reserved in any::<bool>(),
    ) {
        // Reservations ride on VC lanes; faults use the fixed-seed
        // transient-upset stream, exercising RNG-draw alignment.
        let reserved = reserved && fc == FlowControl::VirtualChannel;
        let fault_rate = if faulty { 0.02 } else { 0.0 };
        let gated = run(fc, 4, load, probed, journeys, fault_rate, reserved, false);
        let naive = run(fc, 4, load, probed, journeys, fault_rate, reserved, true);
        prop_assert!(
            gated == naive,
            "gated and naive reports differ ({fc:?} @ {load:.3}, probed={probed}, \
             journeys={journeys}, faults={faulty}, reserved={reserved})"
        );
        if probed {
            let g = gated.metrics.as_ref().expect("probed run carries metrics");
            let n = naive.metrics.as_ref().expect("probed run carries metrics");
            prop_assert_eq!(g.to_json(), n.to_json(), "rendered metrics JSON differs");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The same bit-identity on the 256-tile k = 16 torus, where the
    /// calendar-queue wheel actually earns its keep: stale wheel hints,
    /// slot wraps, and the struct-of-arrays router state must all stay
    /// invisible at scale. Fewer cases than the k = 4 test — each one
    /// simulates 256 routers — but every knob still varies.
    #[test]
    fn gated_engine_matches_naive_at_k16(
        fc in prop_oneof![
            Just(FlowControl::VirtualChannel),
            Just(FlowControl::Dropping),
            Just(FlowControl::Deflection),
        ],
        load in 0.02f64..0.2,
        probed in any::<bool>(),
        faulty in any::<bool>(),
        reserved in any::<bool>(),
    ) {
        let reserved = reserved && fc == FlowControl::VirtualChannel;
        let fault_rate = if faulty { 0.01 } else { 0.0 };
        let gated = run(fc, 16, load, probed, false, fault_rate, reserved, false);
        let naive = run(fc, 16, load, probed, false, fault_rate, reserved, true);
        prop_assert!(
            gated == naive,
            "k=16 gated and naive reports differ ({fc:?} @ {load:.3}, probed={probed}, \
             faults={faulty}, reserved={reserved})"
        );
        if probed {
            let g = gated.metrics.as_ref().expect("probed run carries metrics");
            let n = naive.metrics.as_ref().expect("probed run carries metrics");
            prop_assert_eq!(g.to_json(), n.to_json(), "rendered k=16 metrics JSON differs");
        }
    }
}

/// Flipping the engine mode mid-run changes nothing: both modes keep
/// the same wake bookkeeping, so a half-gated/half-naive run matches
/// the pure runs counter for counter.
#[test]
fn engines_compose_mid_run() {
    let drive = |flips: &[(u64, bool)]| {
        let mut net = Network::new(quick_cfg(FlowControl::VirtualChannel, 4)).expect("valid");
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.2 });
        let mut generation = wl.generator(7);
        let mut delivered = 0u64;
        for now in 0..600u64 {
            if let Some(&(_, naive)) = flips.iter().rev().find(|&&(at, _)| now >= at) {
                net.set_naive_stepping(naive);
            }
            for node in 0..16u16 {
                if let Some(req) = generation.next_request(now, node.into()) {
                    let _ = net.inject(&PacketSpec::new(node.into(), req.dst).payload_bits(256));
                }
            }
            net.step();
            for node in 0..16u16 {
                delivered += net.drain_delivered(node.into()).len() as u64;
            }
        }
        (delivered, net.stats())
    };
    let pure_gated = drive(&[(0, false)]);
    let pure_naive = drive(&[(0, true)]);
    let mixed = drive(&[(0, false), (200, true), (400, false)]);
    assert_eq!(pure_gated, pure_naive);
    assert_eq!(pure_gated, mixed);
}
