//! Property-based tests over the core invariants.

use ocin::core::fault::{FaultKind, LinkFault, SteeredLink};
use ocin::core::flit::{Payload, SizeCode};
use ocin::core::ids::NodeId;
use ocin::core::route::SourceRoute;
use ocin::core::{
    Error, FoldedTorus2D, Mesh2D, Network, NetworkConfig, PacketSpec, ReservationTable, Ring,
    StaticFlowSpec, Topology, TopologySpec,
};
use proptest::prelude::*;

/// Radices the 2-D topologies are sampled at: the paper's k = 4, its
/// neighbors, odd radices (which exercise the asymmetric fold and the
/// no-tie minimal-route halving), and the k = 16 / k = 32 scaling
/// targets (256 and 1024 tiles).
const RADICES_2D: [usize; 7] = [2, 3, 4, 5, 8, 16, 32];

fn radix_2d() -> impl Strategy<Value = usize> {
    (0usize..RADICES_2D.len()).prop_map(|i| RADICES_2D[i])
}

fn topologies() -> impl Strategy<Value = (Box<dyn Topology>, TopologySpec)> {
    prop_oneof![
        radix_2d().prop_map(|k| (
            Box::new(Mesh2D::new(k)) as Box<dyn Topology>,
            TopologySpec::Mesh { k }
        )),
        radix_2d().prop_map(|k| (
            Box::new(FoldedTorus2D::new(k)) as Box<dyn Topology>,
            TopologySpec::FoldedTorus { k }
        )),
        (2usize..=32).prop_map(|k| (
            Box::new(Ring::new(k)) as Box<dyn Topology>,
            TopologySpec::Ring { k }
        )),
    ]
}

proptest! {
    /// Any route between distinct nodes compiles to turns and walks the
    /// topology back to the destination.
    #[test]
    fn routes_compile_and_walk((topo, _) in topologies(), s in 0usize..1024, d in 0usize..1024) {
        let n = topo.num_nodes();
        let (src, dst) = (NodeId::new((s % n) as u16), NodeId::new((d % n) as u16));
        prop_assume!(src != dst);
        let dirs = topo.route_dirs(src, dst);
        let route = SourceRoute::compile(&dirs).expect("minimal routes never reverse");
        // Walking the compiled route reproduces the hop list.
        prop_assert_eq!(route.walk(), dirs.clone());
        let mut node = src;
        for dir in dirs {
            node = topo.neighbor(node, dir).expect("route uses real channels");
        }
        prop_assert_eq!(node, dst);
    }

    /// Minimal routes never exceed the topology diameter.
    #[test]
    fn routes_are_minimal_length((topo, _) in topologies(), s in 0usize..1024, d in 0usize..1024) {
        let n = topo.num_nodes();
        let k = topo.radix();
        let (src, dst) = (NodeId::new((s % n) as u16), NodeId::new((d % n) as u16));
        let hops = topo.route_dirs(src, dst).len();
        let diameter = match topo.name() {
            name if name.starts_with("mesh") => 2 * (k - 1),
            name if name.starts_with("ftorus") => 2 * (k / 2),
            _ => k / 2, // ring
        };
        prop_assert!(hops <= diameter.max(1), "hops {} > diameter {}", hops, diameter);
    }

    /// Size codes round-trip for every legal payload width.
    #[test]
    fn size_codes_cover_payloads(bits in 1usize..=256) {
        let code = SizeCode::for_bits(bits).expect("1..=256 always encodes");
        prop_assert!(code.bits() >= bits);
        prop_assert!(code.bits() < 2 * bits.next_power_of_two().max(2));
    }

    /// Steering is the identity as long as faults fit the spare budget.
    #[test]
    fn steering_masks_within_budget(
        wires in proptest::collection::btree_set(0usize..256, 0..=3),
        word in any::<u64>(),
    ) {
        let spares = wires.len();
        let mut link = SteeredLink::new(256, spares);
        for &w in &wires {
            link.inject_fault(LinkFault { wire: w, kind: FaultKind::StuckAtOne });
        }
        let data = Payload::from_u64(word);
        let (out, corrupted) = link.transmit(&data);
        prop_assert!(!corrupted);
        prop_assert_eq!(out, data);
    }

    /// Reservation tables never double-book a (link, slot).
    #[test]
    fn reservations_never_conflict(
        phases in proptest::collection::vec(0u64..16, 1..6),
        seed in 0u16..100,
    ) {
        let topo = FoldedTorus2D::new(4);
        let flows: Vec<StaticFlowSpec> = phases
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let src = NodeId::new(seed.wrapping_mul(7).wrapping_add(i as u16 * 3) % 16);
                let dst = NodeId::new(seed.wrapping_mul(11).wrapping_add(i as u16 * 5 + 1) % 16);
                StaticFlowSpec::new(src, dst, p, 64)
            })
            .filter(|f| f.src != f.dst)
            .collect();
        prop_assume!(!flows.is_empty());
        if let Ok(table) = ReservationTable::build(&topo, 16, 2, 2, &flows) {
            // Count reservations two ways; they must agree and each
            // (link, slot) appears at most once by construction of the
            // query API.
            let per_flow: usize = table.flows().iter().map(|f| f.route.len()).sum();
            prop_assert_eq!(table.total_reservations(), per_flow);
        }
        // An admission error is also a valid outcome (conflict).
    }

    /// Any batch of sub-saturation packets drains completely on the
    /// baseline network, and payloads arrive intact.
    #[test]
    fn packets_always_drain_and_arrive_intact(
        pairs in proptest::collection::vec((0u16..16, 0u16..16, 1usize..=3), 1..40),
    ) {
        let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
        let mut expected = Vec::new();
        for (i, &(s, d, flits)) in pairs.iter().enumerate() {
            if s == d {
                continue;
            }
            let data: Vec<Payload> =
                (0..flits).map(|f| Payload::from_u64((i * 8 + f) as u64)).collect();
            match net.inject(
                &PacketSpec::new(s.into(), d.into())
                    .payload_bits(flits * 256)
                    .data(data.clone()),
            ) {
                Ok(id) => expected.push((id, d, data)),
                Err(Error::InjectionBackpressure { .. }) => {
                    // Let the network make space, then continue.
                    net.step();
                }
                Err(e) => panic!("{e}"),
            }
        }
        prop_assert!(net.drain(50_000), "network failed to drain");
        let mut delivered = 0;
        for d in 0..16u16 {
            for pkt in net.drain_delivered(d.into()) {
                let (_, dst, data) = expected
                    .iter()
                    .find(|(id, _, _)| *id == pkt.id)
                    .expect("only injected packets arrive");
                prop_assert_eq!(*dst, u16::from(pkt.dst));
                prop_assert_eq!(&pkt.payloads, data);
                prop_assert!(!pkt.corrupted);
                delivered += 1;
            }
        }
        prop_assert_eq!(delivered, expected.len());
    }

    /// The folded physical placement never stretches a link beyond two
    /// tile pitches.
    #[test]
    fn folded_links_bounded((topo, _) in topologies()) {
        for (node, dir) in topo.channels() {
            let len = topo.link_length_pitches(node, dir);
            prop_assert!((1.0..=2.0).contains(&len));
        }
    }

    /// Neighbor relations are symmetric on every topology.
    #[test]
    fn neighbors_symmetric((topo, _) in topologies()) {
        for (node, dir) in topo.channels() {
            let nb = topo.neighbor(node, dir).expect("listed");
            prop_assert_eq!(topo.neighbor(nb, dir.opposite()), Some(node));
        }
    }

    /// The folded placement is a true permutation with a well-defined
    /// inverse at every radix, including odd ones: each physical slot
    /// along the line is occupied by exactly one logical index, and
    /// looking a node up by its physical slot recovers it. Exercised
    /// through `Ring::physical_position`, which is `folded_position`
    /// applied to the single dimension.
    #[test]
    fn folded_placement_is_inverse_permutation(k in 2usize..=33) {
        let ring = Ring::new(k);
        let mut phys_to_logical: Vec<Option<usize>> = vec![None; k];
        for l in 0..k {
            let p = ring.physical_position(NodeId::new(l as u16)).x as usize;
            prop_assert!(p < k, "physical slot {} out of range", p);
            prop_assert!(
                phys_to_logical[p].is_none(),
                "physical slot {} double-booked", p
            );
            phys_to_logical[p] = Some(l);
        }
        for (p, l) in phys_to_logical.iter().enumerate() {
            let l = l.expect("permutation is onto: every slot filled");
            prop_assert_eq!(
                ring.physical_position(NodeId::new(l as u16)).x as usize,
                p
            );
        }
        // The 2-D torus applies the same per-dimension permutation:
        // each axis of a node's physical position is the ring placement
        // of the matching logical coordinate.
        let kk = k.min(16);
        let torus = FoldedTorus2D::new(kk);
        let line = Ring::new(kk);
        for i in 0..torus.num_nodes() {
            let node = NodeId::new(i as u16);
            let c = torus.coord(node);
            let p = torus.physical_position(node);
            let px = line.physical_position(NodeId::new(u16::from(c.x))).x;
            let py = line.physical_position(NodeId::new(u16::from(c.y))).x;
            prop_assert_eq!((p.x, p.y), (px, py));
        }
    }

    /// `node_at` is the left inverse of `coord` on every node of every
    /// topology — node ids survive the coordinate round trip unaliased
    /// even at 1024 tiles, where an 8-bit intermediate would fold ids
    /// modulo 256.
    #[test]
    fn node_at_coord_roundtrip((topo, _) in topologies()) {
        for i in 0..topo.num_nodes() {
            let node = NodeId::new(i as u16);
            prop_assert_eq!(topo.node_at(topo.coord(node)), node);
        }
    }
}
