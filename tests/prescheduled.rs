//! Pre-scheduled traffic guarantees (paper §2.6), end to end.

use ocin::core::ids::FlowId;
use ocin::core::{Error, Network, NetworkConfig, ReservationPolicy, StaticFlowSpec, TopologySpec};
use ocin::sim::{SimConfig, Simulation};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};

fn cfg_with_flows(policy: ReservationPolicy) -> NetworkConfig {
    NetworkConfig::paper_baseline()
        .with_reservation_period(8)
        .with_reservation_policy(policy)
        .with_static_flow(StaticFlowSpec::new(0.into(), 10.into(), 0, 256))
        .with_static_flow(StaticFlowSpec::new(5.into(), 6.into(), 3, 128))
}

#[test]
fn reserved_flows_are_jitter_free_at_every_load() {
    for load in [0.0, 0.2, 0.5, 0.8] {
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: load });
        let report = Simulation::new(
            cfg_with_flows(ReservationPolicy::WorkConserving),
            SimConfig::quick(),
        )
        .unwrap()
        .with_workload(&wl)
        .run();
        for flow in [FlowId(0), FlowId(1)] {
            let jitter = report.flow_jitter[&flow];
            assert!(jitter <= 1.0, "flow {flow} jitter {jitter} at load {load}");
            assert!(report.flow_latency[&flow].count > 50);
        }
    }
}

#[test]
fn reserved_latency_is_load_independent() {
    let lat_at = |load: f64| {
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: load });
        Simulation::new(
            cfg_with_flows(ReservationPolicy::WorkConserving),
            SimConfig::quick(),
        )
        .unwrap()
        .with_workload(&wl)
        .run()
        .flow_latency[&FlowId(0)]
            .mean
    };
    let idle = lat_at(0.0);
    let busy = lat_at(0.7);
    assert!(
        (idle - busy).abs() <= 1.0,
        "reserved latency moved from {idle} to {busy} under load"
    );
}

#[test]
fn strict_policy_idles_unused_slots() {
    // With strict reservations the dynamic traffic loses the reserved
    // cycles even when the flow is idle, so dynamic latency under strict
    // is at least as high as under work-conserving.
    let run = |policy| {
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.5 });
        Simulation::new(cfg_with_flows(policy), SimConfig::quick())
            .unwrap()
            .with_workload(&wl)
            .run()
    };
    let wc = run(ReservationPolicy::WorkConserving);
    let strict = run(ReservationPolicy::Strict);
    assert!(strict.accepted_flit_rate <= wc.accepted_flit_rate + 0.02);
    // The reserved flow is perfect in both.
    assert!(strict.flow_jitter[&FlowId(0)] <= 1.0);
    assert!(wc.flow_jitter[&FlowId(0)] <= 1.0);
}

#[test]
fn oversubscription_is_rejected_at_admission() {
    // Same source, same phase: first link conflicts.
    let cfg = NetworkConfig::paper_baseline()
        .with_reservation_period(8)
        .with_static_flow(StaticFlowSpec::new(0.into(), 2.into(), 0, 64))
        .with_static_flow(StaticFlowSpec::new(0.into(), 2.into(), 0, 64));
    match Network::new(cfg) {
        Err(Error::Reservation(_)) => {}
        other => panic!("expected reservation conflict, got {other:?}"),
    }
}

#[test]
fn flows_admit_on_mesh_too() {
    let cfg = NetworkConfig::paper_baseline()
        .with_topology(TopologySpec::Mesh { k: 4 })
        .with_reservation_period(8)
        .with_static_flow(StaticFlowSpec::new(0.into(), 15.into(), 0, 256));
    let wl = Workload::new(16, 4, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: 0.3 });
    let report = Simulation::new(cfg, SimConfig::quick())
        .unwrap()
        .with_workload(&wl)
        .run();
    assert!(report.flow_jitter[&FlowId(0)] <= 1.0);
}

#[test]
fn reservation_fraction_reported() {
    let net = Network::new(cfg_with_flows(ReservationPolicy::WorkConserving)).unwrap();
    let table = net.reservation_table().expect("flows configured");
    assert_eq!(table.flows().len(), 2);
    // Total reservations = sum of route lengths.
    let hops: usize = table.flows().iter().map(|f| f.route.len()).sum();
    assert_eq!(table.total_reservations(), hops);
    assert_eq!(table.period(), 8);
}
