//! `SimReport` must render identically across identical runs.
//!
//! The per-class and per-flow maps in the report are `BTreeMap`s, so
//! any serialization or iteration of per-flow results is order-stable
//! — two runs of the same `(config, seed)` must produce reports whose
//! textual renderings are byte-identical, which is what lets CI diff
//! experiment transcripts. (`ocin-lint`'s `nondeterministic-iteration`
//! rule keeps hash maps from creeping back into these paths.) The run
//! goes through `ShardedSimulation::from_env`, so the CI
//! shard-equivalence matrix re-runs this suite at `OCIN_SHARDS ∈
//! {1, 2, 4, 8}` — and the rendering must also match a forced
//! sequential run byte for byte.

use std::fmt::Write as _;

use ocin::core::reservation::StaticFlowSpec;
use ocin::core::NetworkConfig;
use ocin::sim::{ShardedSimulation, SimConfig, SimReport, Simulation};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};

/// A run with dynamic traffic in every class plus two static flows, so
/// the class- and flow-keyed maps are all populated. `shards` of 0
/// means "whatever `OCIN_SHARDS` says".
fn run(shards: Option<usize>) -> SimReport {
    let cfg = NetworkConfig::paper_baseline()
        .with_static_flow(StaticFlowSpec::new(0.into(), 5.into(), 0, 256))
        .with_static_flow(StaticFlowSpec::new(9.into(), 2.into(), 3, 128))
        .with_reservation_period(8);
    let wl = Workload::new(16, 4, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: 0.2 });
    let sim = Simulation::new(cfg, SimConfig::quick())
        .unwrap()
        .with_workload(&wl);
    let mut sharded = match shards {
        Some(s) => ShardedSimulation::new(sim, s),
        None => ShardedSimulation::from_env(sim),
    };
    sharded.run()
}

/// Renders the report the way an experiment transcript would: every
/// map iterated in key order, floats printed exactly.
fn render(r: &SimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{r:?}");
    for (class, lat) in &r.class_latency {
        let _ = writeln!(
            out,
            "class {class}: mean {:.17e} p99 {:.17e}",
            lat.mean, lat.p99
        );
    }
    for (flow, jitter) in &r.flow_jitter {
        let _ = writeln!(out, "flow {flow:?}: jitter {jitter:.17e}");
    }
    for (flow, lat) in &r.flow_latency {
        let _ = writeln!(
            out,
            "flow {flow:?}: mean {:.17e} count {}",
            lat.mean, lat.count
        );
    }
    out
}

#[test]
fn two_runs_render_identical_report_text() {
    let a = run(None);
    let b = run(None);
    assert!(!a.class_latency.is_empty(), "classes populated");
    assert!(!a.flow_latency.is_empty(), "flows populated");
    assert_eq!(a, b, "reports must be bit-identical");
    assert_eq!(render(&a), render(&b), "renderings must be byte-identical");
}

#[test]
fn env_selected_shard_count_renders_the_sequential_text() {
    let sharded = run(None);
    let sequential = run(Some(1));
    assert_eq!(
        render(&sharded),
        render(&sequential),
        "OCIN_SHARDS changed the report rendering"
    );
}
