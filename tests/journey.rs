//! The latency-decomposition profiler's contract, end to end.
//!
//! Two invariants carry the subsystem:
//!
//! * **Reconciliation.** Every decomposed journey's stage breakdown
//!   telescopes back to its measured network latency *exactly*, cycle
//!   for cycle — across flow-control methods and offered loads
//!   (property-tested below).
//! * **Zero-load exactness.** An uncontended packet's measured latency
//!   *is* the paper's `H·t_r + L/b`, with every contention stage at
//!   zero — the decomposition doesn't approximate the analytic model,
//!   it degenerates to it.
//!
//! Plus the exporter contracts: deterministic bytes, and trace output
//! that actually parses as JSON.

use ocin::core::ids::NodeId;
use ocin::core::probe::ProbeConfig;
use ocin::core::{
    DecompositionReport, FlowControl, LinkProtection, Network, NetworkConfig, NetworkProbe,
    PacketSpec, TopologySpec,
};
use ocin::sim::{LoadSweep, SimConfig, SimReport, Simulation};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};
use proptest::prelude::*;

fn quick_cfg() -> NetworkConfig {
    NetworkConfig::paper_baseline().with_topology(TopologySpec::FoldedTorus { k: 4 })
}

/// Runs a quick journeyed simulation and returns its report.
fn journeyed_run(net_cfg: NetworkConfig, load: f64, capacity: usize) -> SimReport {
    let wl = Workload::new(16, 4, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: load });
    Simulation::new(net_cfg, SimConfig::quick())
        .expect("valid config")
        .with_workload(&wl)
        .with_probe(ProbeConfig::counters().with_journeys(capacity))
        .run()
}

fn decomposition(report: &SimReport) -> &DecompositionReport {
    report
        .metrics
        .as_ref()
        .expect("journeyed run carries metrics")
        .decomposition
        .as_ref()
        .expect("journeyed run carries a decomposition")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// The reconciliation invariant: for every flow-control method and
    /// offered load, every retained journey's breakdown sums to its
    /// measured network latency exactly, and its baseline is the
    /// analytic zero-load formula over its actual hop and flit counts.
    #[test]
    fn breakdown_sums_to_measured_latency(
        fc in prop_oneof![
            Just(FlowControl::VirtualChannel),
            Just(FlowControl::Dropping),
            Just(FlowControl::Deflection),
        ],
        load in 0.05f64..0.5,
    ) {
        let report = journeyed_run(quick_cfg().with_flow_control(fc), load, 4096);
        let d = decomposition(&report);
        prop_assert!(d.packets > 0, "no packets decomposed ({fc:?} @ {load})");
        prop_assert_eq!(
            d.inconsistent, 0,
            "{} journeys failed to reconcile ({:?} @ {})", d.inconsistent, fc, load
        );
        for j in &d.journeys {
            prop_assert!(j.consistent);
            prop_assert_eq!(
                j.breakdown.network_total(),
                j.network_latency(),
                "stage partition != measured latency for {:?} ({:?} @ {})",
                j.packet, fc, load
            );
            prop_assert_eq!(j.breakdown.source_queue, j.entered_at - j.created_at);
            prop_assert!(!j.hops.is_empty());
            prop_assert_eq!(
                j.baseline,
                d.constants.zero_load_latency(j.hops.len() as u64, u64::from(j.flits)),
                "baseline is not H*t_r + L/b over the journey's own hops"
            );
        }
        // The aggregates carry the same invariant: summed stages equal
        // summed measurements.
        prop_assert_eq!(d.totals.stages.network_total(), d.totals.measured);
        prop_assert_eq!(d.totals.count, d.packets);
        let by_class: u64 = d.per_class.values().map(|s| s.measured).sum();
        prop_assert_eq!(by_class, d.totals.measured);
        let by_pair: u64 = d.per_pair.values().map(|s| s.measured).sum();
        prop_assert_eq!(by_pair, d.totals.measured);
    }
}

/// Zero-load exactness: packets injected one at a time, with the
/// network drained in between, measure *exactly* `H·t_r + L/b` and
/// decompose with every contention stage at zero — for the baseline
/// pipeline, a phit-serialized link, SEC-DED decode, and the dropping
/// and deflection cores.
#[test]
fn uncontended_journeys_sit_exactly_on_the_analytic_baseline() {
    let configs = [
        ("vc baseline", quick_cfg()),
        ("phits 4", quick_cfg().with_channel_phits(4)),
        (
            "secded",
            quick_cfg().with_link_protection(LinkProtection::Secded),
        ),
        (
            "dropping",
            quick_cfg().with_flow_control(FlowControl::Dropping),
        ),
        (
            "deflection",
            quick_cfg().with_flow_control(FlowControl::Deflection),
        ),
    ];
    for (name, cfg) in configs {
        let mut net = Network::new(cfg).expect("valid config");
        net.attach_probe(NetworkProbe::for_network(
            net.config(),
            ProbeConfig::counters().with_journeys(64),
        ));
        // One packet at a time: drain fully so nothing ever contends.
        for (src, dst, bits) in [(0u16, 1u16, 64), (0, 10, 256), (5, 6, 256), (15, 0, 128)] {
            net.inject(&PacketSpec::new(NodeId::new(src), NodeId::new(dst)).payload_bits(bits))
                .expect("inject");
            net.drain(200);
            for n in 0..16 {
                net.drain_delivered(NodeId::new(n));
            }
        }
        let cycles = net.cycle();
        let metrics = net.take_probe().expect("attached").into_metrics(cycles);
        let d = metrics.decomposition.as_ref().expect("journeys enabled");
        assert_eq!(d.packets, 4, "{name}: all four packets decomposed");
        assert_eq!(d.inconsistent, 0, "{name}");
        for j in &d.journeys {
            assert_eq!(
                j.network_latency(),
                j.baseline,
                "{name}: {:?} {}->{} measured {} != analytic H*t_r + L/b = {} ({:?})",
                j.packet,
                j.src,
                j.dst,
                j.network_latency(),
                j.baseline,
                j.breakdown,
            );
            assert_eq!(
                j.breakdown.contention(),
                0,
                "{name}: uncontended packet charged contention cycles: {:?}",
                j.breakdown,
            );
            // An idle source queue still pays phit alignment on the
            // inject link: up to `channel_phits - 1` cycles, never more.
            assert!(
                j.breakdown.source_queue < d.constants.channel_phits,
                "{name}: uncontended source-queue wait {} exceeds phit alignment",
                j.breakdown.source_queue,
            );
            assert_eq!(j.contention_surplus(), 0, "{name}");
        }
        // Pin one absolute number so the formula itself can't drift: on
        // the untouched baseline, 0 -> 1 (east neighbour, single flit)
        // is the canonical 5-cycle zero-load journey.
        if name == "vc baseline" {
            let j = d
                .journeys
                .iter()
                .find(|j| j.src == NodeId::new(0) && j.dst == NodeId::new(1))
                .expect("0->1 retained");
            assert_eq!(j.network_latency(), 5);
            assert_eq!(j.hops.len(), 2);
        }
    }
}

/// Journeys ride the probe's zero-perturbation contract: a journeyed
/// run's measurements are bit-identical to the unprobed run, for every
/// flow-control method.
#[test]
fn journeyed_report_is_bit_identical_to_unprobed() {
    for fc in [
        FlowControl::VirtualChannel,
        FlowControl::Dropping,
        FlowControl::Deflection,
    ] {
        let cfg = quick_cfg().with_flow_control(fc);
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.35 });
        let bare = Simulation::new(cfg.clone(), SimConfig::quick())
            .expect("valid config")
            .with_workload(&wl)
            .run();
        let mut journeyed = journeyed_run(cfg, 0.35, 256);
        assert!(decomposition(&journeyed).packets > 0);
        journeyed.metrics = None;
        assert_eq!(
            bare, journeyed,
            "journey collector perturbed the run ({fc:?})"
        );
    }
}

/// Both exporters are deterministic: two runs of the same point render
/// byte-identical text and byte-identical trace JSON.
#[test]
fn exporters_are_byte_deterministic() {
    let run = || journeyed_run(quick_cfg(), 0.3, 512);
    let (a, b) = (run(), run());
    let (da, db) = (decomposition(&a), decomposition(&b));
    assert!(!da.journeys.is_empty());
    assert_eq!(da.to_text(), db.to_text());
    assert_eq!(da.to_trace_json(), db.to_trace_json());
    assert!(da.to_text().starts_with("ocin-journeys v1\n"));
}

/// Journeyed sweep points carry aggregate decompositions (no retained
/// journeys — bounded memory) and cache separately from plain and
/// probed points.
#[test]
fn journeyed_sweep_points_carry_aggregates() {
    let sweep = LoadSweep::new(
        quick_cfg(),
        SimConfig::quick(),
        Workload::new(16, 4, TrafficPattern::Uniform),
    )
    .with_journeys(true);
    let pts = sweep.run(&[0.1, 0.4]);
    for p in &pts {
        let d = decomposition(&p.report);
        assert!(d.packets > 0);
        assert!(
            d.journeys.is_empty(),
            "sweep points retain no journey records"
        );
        assert_eq!(d.totals.stages.network_total(), d.totals.measured);
    }
    // Contention share grows toward saturation.
    let share = |d: &DecompositionReport| d.totals.share(d.totals.stages.contention());
    assert!(share(decomposition(&pts[1].report)) > share(decomposition(&pts[0].report)));
    // The journeyed point is a distinct cache entry from plain/probed.
    assert_eq!(sweep.pool().cached_points(), 2);
    let plain = sweep.spec(0.1).with_journeys(false);
    sweep.pool().run(std::slice::from_ref(&plain));
    assert_eq!(sweep.pool().cached_points(), 3);
}

// --- minimal JSON parser (validation only) -------------------------------

/// Parses one JSON value, returning the rest of the input on success.
/// Supports exactly the grammar the exporter emits: objects, arrays,
/// strings (no escapes needed beyond \"), integers, and bools.
fn json_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.chars();
    match chars.next() {
        Some('{') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Ok(r);
            }
            loop {
                let r = json_string(rest)?;
                let r = r
                    .trim_start()
                    .strip_prefix(':')
                    .ok_or("expected ':' after key")?;
                rest = json_value(r)?.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r.trim_start();
                } else if let Some(r) = rest.strip_prefix('}') {
                    return Ok(r);
                } else {
                    return Err(format!("expected ',' or '}}' at: {rest:.40}"));
                }
            }
        }
        Some('[') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return Ok(r);
            }
            loop {
                rest = json_value(rest)?.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r.trim_start();
                } else if let Some(r) = rest.strip_prefix(']') {
                    return Ok(r);
                } else {
                    return Err(format!("expected ',' or ']' at: {rest:.40}"));
                }
            }
        }
        Some('"') => json_string(s),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '.'))
                .unwrap_or(s.len());
            Ok(&s[end..])
        }
        Some('t') => s.strip_prefix("true").ok_or_else(|| "bad literal".into()),
        Some('f') => s.strip_prefix("false").ok_or_else(|| "bad literal".into()),
        other => Err(format!("unexpected {other:?}")),
    }
}

/// Parses a JSON string token (escape-aware), returning the rest.
fn json_string(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let inner = s.strip_prefix('"').ok_or("expected string")?;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match (escaped, c) {
            (true, _) => escaped = false,
            (false, '\\') => escaped = true,
            (false, '"') => return Ok(&inner[i + 1..]),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

/// The trace exporter emits well-formed JSON with the Chrome
/// `trace_event` envelope: a `traceEvents` array whose entries carry
/// `ph`/`pid`/`ts` fields, metadata tracks, and matched async
/// begin/end spans per journey.
#[test]
fn trace_export_is_valid_chrome_trace_json() {
    let report = journeyed_run(quick_cfg(), 0.3, 256);
    let d = decomposition(&report);
    let trace = d.to_trace_json();

    let rest = json_value(&trace).expect("trace output must parse as JSON");
    assert!(
        rest.trim().is_empty(),
        "trailing garbage after JSON: {rest:.40}"
    );

    assert!(trace.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
    for key in [
        "\"ph\": \"M\"",
        "\"ph\": \"X\"",
        "\"ph\": \"b\"",
        "\"ph\": \"e\"",
    ] {
        assert!(trace.contains(key), "missing {key} events");
    }
    // Async spans pair up: every begin has its end.
    let begins = trace.matches("\"ph\": \"b\"").count();
    let ends = trace.matches("\"ph\": \"e\"").count();
    assert_eq!(begins, ends, "unbalanced async journey spans");
    assert_eq!(begins, d.journeys.len());
    // Every hop of every retained journey renders a complete event.
    let hops: usize = d.journeys.iter().map(|j| j.hops.len()).sum();
    assert_eq!(trace.matches("\"ph\": \"X\"").count(), hops);
}
