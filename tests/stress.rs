//! Randomized mixed-feature stress: arbitrary combinations of topology,
//! serialization, link protection, faults, and load must preserve the
//! core invariants — the network drains, nothing is lost under lossless
//! flow control, and protected traffic is never silently corrupted.

use ocin::core::fault::{FaultKind, LinkFault};
use ocin::core::flit::Payload;
use ocin::core::{
    Error, LinkProtection, Network, NetworkConfig, PacketSpec, RoutingAlg, TopologySpec,
};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    topology: TopologySpec,
    phits: u64,
    protection: LinkProtection,
    valiant: bool,
    buf_depth: usize,
    load: f64,
    transient: f64,
    stuck_fault: bool,
    seed: u64,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![
            Just(TopologySpec::FoldedTorus { k: 4 }),
            Just(TopologySpec::Mesh { k: 4 }),
            Just(TopologySpec::Ring { k: 8 }),
        ],
        prop_oneof![Just(1u64), Just(2), Just(4)],
        prop_oneof![Just(LinkProtection::None), Just(LinkProtection::Secded)],
        any::<bool>(),
        2usize..=4,
        0.02f64..0.25,
        prop_oneof![Just(0.0f64), Just(0.02)],
        any::<bool>(),
        0u64..1000,
    )
        .prop_map(
            |(
                topology,
                phits,
                protection,
                valiant,
                buf_depth,
                load,
                transient,
                stuck_fault,
                seed,
            )| {
                Scenario {
                    topology,
                    phits,
                    protection,
                    valiant,
                    buf_depth,
                    load,
                    transient,
                    stuck_fault,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the feature mix, the network delivers every injected
    /// packet and drains completely at sub-saturation load.
    #[test]
    fn mixed_features_never_lose_packets(sc in scenarios()) {
        let mut cfg = NetworkConfig::paper_baseline()
            .with_topology(sc.topology)
            .with_channel_phits(sc.phits)
            .with_link_protection(sc.protection)
            .with_buf_depth(sc.buf_depth)
            .with_seed(sc.seed);
        if sc.valiant {
            cfg = cfg.with_routing(RoutingAlg::Valiant);
        }
        let mut net = Network::new(cfg).expect("scenario is valid");
        net.set_transient_fault_rate(sc.transient);
        if sc.stuck_fault {
            // One stuck-at on an arbitrary link: the spare must mask it.
            let (node, dir) = net.topology().channels()[0];
            net.inject_link_fault(node, dir, LinkFault {
                wire: 123,
                kind: FaultKind::StuckAtOne,
            }).expect("channel exists");
        }

        // Serialization divides per-node bandwidth; keep offered load
        // under the narrow channel's capacity.
        let load = sc.load / sc.phits as f64;
        let n = net.topology().num_nodes();
        let k = net.topology().radix();
        let wl = Workload::new(n, k, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: load });
        let mut generation = wl.generator(sc.seed);
        let mut injected = 0u64;
        let payload = Payload::from_u64(0x00C0_FFEE);
        for now in 0..800u64 {
            for node in 0..n as u16 {
                if let Some(req) = generation.next_request(now, node.into()) {
                    match net.inject(
                        &PacketSpec::new(node.into(), req.dst)
                            .payload_bits(64)
                            .data(vec![payload]),
                    ) {
                        Ok(_) => injected += 1,
                        Err(Error::InjectionBackpressure { .. }) => {}
                        Err(e) => panic!("{e}"),
                    }
                }
            }
            net.step();
        }
        prop_assert!(net.drain(60_000), "{sc:?} failed to drain");
        let mut delivered = 0u64;
        let mut corrupted = 0u64;
        for d in 0..n as u16 {
            for pkt in net.drain_delivered(d.into()) {
                delivered += 1;
                if pkt.corrupted || pkt.payloads[0] != payload {
                    corrupted += 1;
                }
            }
        }
        prop_assert_eq!(delivered, injected, "{:?}", sc);
        // With SEC-DED every single-bit event is repaired; the steered
        // stuck-at is masked; so corruption only appears on unprotected
        // links with transient upsets.
        if sc.protection == LinkProtection::Secded || sc.transient == 0.0 {
            prop_assert_eq!(corrupted, 0, "{:?}", sc);
        }
    }
}
