//! Shard equivalence: threaded sharded execution vs the sequential runner.
//!
//! The sharded engine's contract (DESIGN.md §3.15) is that cutting one
//! network into tile-region cells and stepping them on worker threads
//! under conservative lookahead synchronization is *invisible*: for any
//! configuration and any shard count, `ShardedSimulation` must produce
//! a report — and rendered metrics, when probed — bit-identical to
//! `Simulation`. The property tests below sample across flow-control
//! methods, offered loads, probing/journey collection, transient
//! faults, static-flow reservations, and shard counts; directed tests
//! check conservation at region seams and that shard-count flips
//! compose with the engine-mode flips from the activity-gating suite.

use ocin::core::probe::ProbeConfig;
use ocin::core::{FlowControl, Network, NetworkConfig, PacketSpec, StaticFlowSpec, TopologySpec};
use ocin::sim::{ShardedSimulation, SimConfig, SimReport, Simulation};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};
use proptest::prelude::*;

fn quick_cfg(fc: FlowControl, k: usize) -> NetworkConfig {
    NetworkConfig::paper_baseline()
        .with_topology(TopologySpec::FoldedTorus { k })
        .with_flow_control(fc)
}

/// One quick simulation with every sampled knob applied, stepped on
/// `shards` worker threads (1 = the sequential reference).
#[allow(clippy::too_many_arguments)]
fn run(
    fc: FlowControl,
    k: usize,
    sim_cfg: SimConfig,
    load: f64,
    probed: bool,
    journeys: bool,
    fault_rate: f64,
    reserved: bool,
    shards: usize,
) -> SimReport {
    let mut cfg = quick_cfg(fc, k);
    if reserved {
        cfg = cfg
            .with_reservation_period(8)
            .with_static_flow(StaticFlowSpec::new(0.into(), 5.into(), 1, 64));
    }
    let wl = Workload::new(k * k, k, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: load });
    let mut sim = Simulation::new(cfg, sim_cfg)
        .expect("valid config")
        .with_workload(&wl);
    if probed {
        let pc = if journeys {
            ProbeConfig::counters().with_journeys(512)
        } else {
            ProbeConfig::counters()
        };
        sim = sim.with_probe(pc);
    }
    sim.network_mut().set_transient_fault_rate(fault_rate);
    let mut sharded = ShardedSimulation::new(sim, shards);
    sharded.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For a random configuration and shard count, the sharded report —
    /// and its rendered metrics JSON, when probed — is bit-identical to
    /// the sequential runner's.
    #[test]
    fn sharded_run_matches_sequential(
        fc in prop_oneof![
            Just(FlowControl::VirtualChannel),
            Just(FlowControl::Dropping),
            Just(FlowControl::Deflection),
        ],
        load in 0.02f64..0.6,
        probed in any::<bool>(),
        journeys in any::<bool>(),
        faulty in any::<bool>(),
        reserved in any::<bool>(),
        shards in prop_oneof![Just(2usize), Just(3), Just(4), Just(8)],
    ) {
        let reserved = reserved && fc == FlowControl::VirtualChannel;
        let fault_rate = if faulty { 0.02 } else { 0.0 };
        let cfg = SimConfig::quick();
        let seq = run(fc, 4, cfg, load, probed, journeys, fault_rate, reserved, 1);
        let shd = run(fc, 4, cfg, load, probed, journeys, fault_rate, reserved, shards);
        prop_assert!(
            seq == shd,
            "sequential and {shards}-shard reports differ ({fc:?} @ {load:.3}, \
             probed={probed}, journeys={journeys}, faults={faulty}, reserved={reserved})"
        );
        if probed {
            let s = seq.metrics.as_ref().expect("probed run carries metrics");
            let p = shd.metrics.as_ref().expect("probed run carries metrics");
            prop_assert_eq!(s.to_json(), p.to_json(), "rendered metrics JSON differs");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The same bit-identity on the 256-tile k = 16 torus, where cells
    /// span many rows and the boundary mailboxes carry real traffic.
    #[test]
    fn sharded_run_matches_sequential_at_k16(
        fc in prop_oneof![
            Just(FlowControl::VirtualChannel),
            Just(FlowControl::Dropping),
        ],
        load in 0.02f64..0.15,
        probed in any::<bool>(),
        shards in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let cfg = SimConfig::quick();
        let seq = run(fc, 16, cfg, load, probed, false, 0.0, false, 1);
        let shd = run(fc, 16, cfg, load, probed, false, 0.0, false, shards);
        prop_assert!(
            seq == shd,
            "k=16 sequential and {shards}-shard reports differ ({fc:?} @ {load:.3}, \
             probed={probed})"
        );
        if probed {
            let s = seq.metrics.as_ref().expect("probed run carries metrics");
            let p = shd.metrics.as_ref().expect("probed run carries metrics");
            prop_assert_eq!(s.to_json(), p.to_json(), "rendered k=16 metrics JSON differs");
        }
    }
}

/// Bit-identity holds at the 1024-tile k = 32 scale the shard runner
/// exists for. One probed point, shortened phases: this is the largest
/// network in the tree and the suite runs it four times.
#[test]
fn sharded_run_matches_sequential_at_k32() {
    let cfg = SimConfig {
        warmup_cycles: 50,
        measure_cycles: 200,
        drain_cycles: 400,
        seed: 0xB19,
    };
    let seq = run(
        FlowControl::VirtualChannel,
        32,
        cfg,
        0.05,
        true,
        false,
        0.0,
        false,
        1,
    );
    for shards in [2usize, 4, 8] {
        let shd = run(
            FlowControl::VirtualChannel,
            32,
            cfg,
            0.05,
            true,
            false,
            0.0,
            false,
            shards,
        );
        assert!(
            seq == shd,
            "k=32 sequential and {shards}-shard reports differ"
        );
        assert_eq!(
            seq.metrics.as_ref().expect("probed").to_json(),
            shd.metrics.as_ref().expect("probed").to_json(),
            "rendered k=32 metrics JSON differs at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Boundary exchange conserves flits and packets exactly: whatever
    /// crosses a region seam arrives once and only once, so after a
    /// full drain every injected packet (and flit) has been delivered —
    /// at any cell count, with the same totals as the 1-cell network.
    #[test]
    fn boundary_exchange_conserves_flits(
        shards in 1usize..=8,
        load in 0.05f64..0.4,
        cycles in 100u64..400,
    ) {
        let drive = |cells: usize| {
            let mut net = Network::new(quick_cfg(FlowControl::VirtualChannel, 4))
                .expect("valid config");
            net.set_shards(cells);
            let wl = Workload::new(16, 4, TrafficPattern::Uniform)
                .injection(InjectionProcess::Bernoulli { flit_rate: load });
            let mut generation = wl.generator(21);
            let mut delivered_packets = 0u64;
            let mut delivered_flits = 0u64;
            let mut drain = 0u32;
            for now in 0.. {
                if now < cycles {
                    for node in 0..16u16 {
                        if let Some(req) = generation.next_request(now, node.into()) {
                            let _ = net
                                .inject(&PacketSpec::new(node.into(), req.dst).payload_bits(256));
                        }
                    }
                }
                net.step();
                for node in 0..16u16 {
                    for pkt in net.drain_delivered(node.into()) {
                        delivered_packets += 1;
                        delivered_flits += pkt.num_flits as u64;
                    }
                }
                if now >= cycles {
                    drain += 1;
                    prop_assert!(drain < 5_000, "network failed to drain");
                    if net.is_quiescent() {
                        break;
                    }
                }
            }
            prop_assert_eq!(net.flits_in_flight(), 0, "drained network holds flits");
            let stats = net.stats();
            prop_assert_eq!(stats.packets_injected, delivered_packets, "packet loss or duplication");
            prop_assert_eq!(stats.flits_injected, delivered_flits, "flit loss or duplication");
            Ok((delivered_packets, delivered_flits))
        };
        let sharded = drive(shards)?;
        let reference = drive(1)?;
        prop_assert_eq!(sharded, reference, "totals differ from the 1-cell reference");
    }
}

/// Shard-count flips compose with engine-mode flips mid-run: re-cutting
/// the live network while also toggling gated/naive stepping changes
/// nothing, mirroring `engines_compose_mid_run` in the activity-gating
/// suite.
#[test]
fn shard_counts_compose_with_engine_flips() {
    let drive = |plan: &[(u64, usize, bool)]| {
        let mut net = Network::new(quick_cfg(FlowControl::VirtualChannel, 4)).expect("valid");
        let wl = Workload::new(16, 4, TrafficPattern::Uniform)
            .injection(InjectionProcess::Bernoulli { flit_rate: 0.2 });
        let mut generation = wl.generator(7);
        let mut delivered = 0u64;
        for now in 0..600u64 {
            if let Some(&(_, shards, naive)) = plan.iter().rev().find(|&&(at, ..)| now >= at) {
                net.set_shards(shards);
                net.set_naive_stepping(naive);
            }
            for node in 0..16u16 {
                if let Some(req) = generation.next_request(now, node.into()) {
                    let _ = net.inject(&PacketSpec::new(node.into(), req.dst).payload_bits(256));
                }
            }
            net.step();
            for node in 0..16u16 {
                delivered += net.drain_delivered(node.into()).len() as u64;
            }
        }
        (delivered, net.stats())
    };
    let reference = drive(&[(0, 1, false)]);
    let pure_sharded = drive(&[(0, 4, false)]);
    let mixed = drive(&[
        (0, 2, false),
        (150, 8, true),
        (300, 1, false),
        (450, 4, true),
    ]);
    assert_eq!(reference, pure_sharded);
    assert_eq!(reference, mixed);
}
