//! Fault tolerance end to end (paper §2.5): a link has a stuck-at wire
//! fault and steering is initially off. The end-to-end CRC layer keeps
//! every corrupt delivery out of the data stream (a permanent fault
//! corrupts every retry, so the stream stalls rather than corrupts);
//! once the steering registers are set, the spare wire masks the fault
//! and the retry layer's backlog drains with nothing lost.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use ocin::core::fault::{FaultKind, LinkFault};
use ocin::core::ids::NodeId;
use ocin::core::{Network, NetworkConfig, PacketSpec};
use ocin::services::{ReliableReceiver, ReliableSender, RetryConfig};

fn main() -> Result<(), ocin::core::Error> {
    let mut net = Network::new(NetworkConfig::paper_baseline())?;
    let src = NodeId::new(0);
    let dst = NodeId::new(3);

    let mut tx = ReliableSender::new(
        dst,
        0,
        RetryConfig {
            timeout: 64,
            window: 4,
            max_attempts: 0,
        },
    );
    let mut rx = ReliableReceiver::new(src, 0);
    for i in 0..40u64 {
        tx.send(vec![0xBEEF_0000 + i, i]);
    }

    // Phase 1 (cycles 0-500): a stuck-at fault appears on the first link
    // of the route but steering is OFF (fuses not yet blown): the CRC
    // layer must carry the stream by retrying.
    let dir = net.topology().route_dirs(src, dst)[0];
    // Wire 70 carries a data bit whose corruption the CRC check catches.
    net.inject_link_fault(
        src,
        dir,
        LinkFault {
            wire: 70,
            kind: FaultKind::StuckAtOne,
        },
    )?;
    net.set_steering(false);

    let mut received = 0usize;
    let mut steered_at = None;
    for now in 0..6_000u64 {
        if now == 500 && steered_at.is_none() {
            // Phase 2: boot-time steering registers are set; the spare
            // wire takes over and the fault is fully masked.
            net.set_steering(true);
            steered_at = Some((now, tx.retransmissions, rx.crc_failures));
        }
        for msg in tx.poll(now) {
            let _ = net.inject(
                &PacketSpec::new(src, msg.dst)
                    .payload_bits(msg.payload_bits)
                    .class(msg.class)
                    .data(msg.payloads),
            );
        }
        net.step();
        for pkt in net.drain_delivered(dst) {
            if let Some(ack) = rx.on_packet(&pkt) {
                let _ = net.inject(
                    &PacketSpec::new(dst, ack.dst)
                        .payload_bits(ack.payload_bits)
                        .class(ack.class)
                        .data(ack.payloads),
                );
            }
        }
        for pkt in net.drain_delivered(src) {
            tx.on_packet(&pkt);
        }
        received += rx.drain().len();
        if received == 40 && tx.pending() == 0 {
            break;
        }
    }

    let (at, retrans_before, crc_before) = steered_at.expect("steering phase reached");
    println!(
        "phase 1 (steering off): {crc_before} corrupt arrivals caught by CRC, \
         {retrans_before} retransmissions — nothing corrupt was accepted"
    );
    println!("phase 2 (steering on at cycle {at}): fault masked by the spare wire; backlog drains");
    println!(
        "total: {received}/40 datagrams delivered exactly once; {} retransmissions, {} CRC drops",
        tx.retransmissions, rx.crc_failures
    );
    assert_eq!(received, 40);
    assert!(crc_before > 0, "phase 1 must exercise the CRC check");
    println!("\nno corrupt data was ever accepted and nothing was lost — §2.5's layered fault tolerance.");
    Ok(())
}
