//! A small system-on-chip assembled from reusable modules over the
//! network (the paper's §1/§4.2 modularity story): four processor tiles
//! talk to two memory-controller tiles through the read/write service,
//! and a logical interrupt wire connects a "peripheral" tile to CPU 0 —
//! all over the same standard tile interface, with no dedicated wiring.
//!
//! ```text
//! cargo run --release --example soc_memory
//! ```

use ocin::core::ids::{Cycle, NodeId};
use ocin::core::interface::DeliveredPacket;
use ocin::core::NetworkConfig;
use ocin::services::{LogicalWireRx, LogicalWireTx, MemoryClient, MemoryOp, MemoryServer};
use ocin::sim::{Client, ClientCtx, ServiceSim};

/// A processor that writes a pattern to memory, reads it back, and
/// watches an interrupt wire.
struct Cpu {
    mem: MemoryClient,
    irq: LogicalWireRx,
    writes_left: u32,
    reads_done: u32,
    errors: u32,
    irq_seen_at: Option<Cycle>,
}

impl Client for Cpu {
    fn on_cycle(&mut self, now: Cycle, ctx: &mut ClientCtx) {
        // One outstanding request at a time: write 8 words, then read
        // them back.
        if self.mem.outstanding() == 0 {
            if self.writes_left > 0 {
                let addr = self.writes_left;
                let (m, _) = self.mem.issue(
                    MemoryOp::Write {
                        addr,
                        value: 0x1000 + addr as u64,
                    },
                    now,
                );
                ctx.send(m);
                self.writes_left -= 1;
            } else if self.reads_done < 8 {
                let addr = 8 - self.reads_done;
                let (m, _) = self.mem.issue(MemoryOp::Read { addr }, now);
                ctx.send(m);
            }
        }
    }

    fn on_packet(&mut self, pkt: &DeliveredPacket, now: Cycle, _ctx: &mut ClientCtx) {
        if self.irq.on_packet(pkt, now) {
            self.irq_seen_at.get_or_insert(now);
            return;
        }
        if let Some(reply) = self.mem.on_packet(pkt, now) {
            if let Some(v) = reply.data {
                self.reads_done += 1;
                if v != 0x1000 + reply.addr as u64 {
                    self.errors += 1;
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A memory-controller tile.
struct Mem {
    server: MemoryServer,
}

impl Client for Mem {
    fn on_cycle(&mut self, now: Cycle, ctx: &mut ClientCtx) {
        for m in self.server.poll(now) {
            ctx.send(m);
        }
    }

    fn on_packet(&mut self, pkt: &DeliveredPacket, now: Cycle, _ctx: &mut ClientCtx) {
        self.server.on_packet(pkt, now);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A peripheral that raises an interrupt line (a logical wire) at a fixed
/// time.
struct Peripheral {
    irq: LogicalWireTx,
    fire_at: Cycle,
}

impl Client for Peripheral {
    fn on_cycle(&mut self, now: Cycle, ctx: &mut ClientCtx) {
        let level = u64::from(now >= self.fire_at);
        if let Some(msg) = self.irq.observe(level) {
            ctx.send(msg);
        }
    }

    fn on_packet(&mut self, _pkt: &DeliveredPacket, _now: Cycle, _ctx: &mut ClientCtx) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn main() -> Result<(), ocin::core::Error> {
    let mut sim = ServiceSim::new(NetworkConfig::paper_baseline())?;

    // Floorplan: CPUs at 0,3,12,15 (corners), memories at 5 and 10,
    // peripheral at 7. Everything else is empty silicon.
    let cpus: [(u16, u16); 4] = [(0, 5), (3, 5), (12, 10), (15, 10)];
    for &(cpu, mem) in &cpus {
        sim.set_client(
            cpu.into(),
            Box::new(Cpu {
                mem: MemoryClient::new(mem.into()),
                irq: LogicalWireRx::new(0),
                writes_left: 8,
                reads_done: 0,
                errors: 0,
                irq_seen_at: None,
            }),
        );
    }
    for mem in [5u16, 10] {
        sim.set_client(
            mem.into(),
            Box::new(Mem {
                server: MemoryServer::new(4),
            }),
        );
    }
    sim.set_client(
        7.into(),
        Box::new(Peripheral {
            irq: LogicalWireTx::new(NodeId::new(0), 0, 1),
            fire_at: 300,
        }),
    );

    sim.run(2_000);

    println!("tile  role        result");
    println!("----  ----------  ----------------------------------------");
    for &(cpu, mem) in &cpus {
        let c = sim.take_client(cpu.into()).expect("installed");
        let c = c.as_any().downcast_ref::<Cpu>().expect("cpu");
        println!(
            "t{cpu:<3}  cpu->m{mem:<4}  {} reads ok, {} errors{}",
            c.reads_done,
            c.errors,
            match c.irq_seen_at {
                Some(t) if cpu == 0 => format!(", irq at cycle {t}"),
                _ => String::new(),
            }
        );
        assert_eq!(c.reads_done, 8);
        assert_eq!(c.errors, 0);
        if cpu == 0 {
            assert!(c.irq_seen_at.is_some(), "interrupt wire must arrive");
        }
    }
    let stats = sim.network().stats();
    println!(
        "\nnetwork: {} packets delivered in {} cycles ({} flit-hops)",
        stats.packets_delivered, stats.cycles, stats.energy.flit_hops
    );
    println!("four CPUs, two memories, one interrupt line — zero dedicated top-level wires.");
    Ok(())
}
