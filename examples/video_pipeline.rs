//! The paper's §2.6 motivating scenario: "a flow of video data from a
//! camera input to an MPEG encoder is entirely static and requires
//! high-bandwidth with predictable delay. Such static traffic must share
//! the network with dynamic traffic, such as processor memory references."
//!
//! A camera tile streams pre-scheduled frames to an encoder tile over the
//! reserved virtual channel while four CPU tiles hammer a memory tile
//! with dynamic requests. The video flow's latency stays constant —
//! zero jitter — regardless.
//!
//! ```text
//! cargo run --release --example video_pipeline
//! ```

use ocin::core::ids::FlowId;
use ocin::core::{NetworkConfig, StaticFlowSpec};
use ocin::sim::{SimConfig, Simulation};
use ocin::traffic::{InjectionProcess, TrafficPattern, Workload};

fn main() -> Result<(), ocin::core::Error> {
    const CAMERA: u16 = 0;
    const ENCODER: u16 = 15;

    // Reserve a slot every 8 cycles on each link of the camera->encoder
    // route: a 256-bit sample every 8 cycles = 32 bits/cycle of
    // guaranteed bandwidth.
    let cfg = NetworkConfig::paper_baseline()
        .with_reservation_period(8)
        .with_static_flow(StaticFlowSpec::new(CAMERA.into(), ENCODER.into(), 0, 256));

    // Dynamic background: every tile issues memory-reference-like
    // single-flit packets to random destinations at 0.35 flits/cycle.
    let dynamic = Workload::new(16, 4, TrafficPattern::Uniform)
        .injection(InjectionProcess::Bernoulli { flit_rate: 0.35 });

    let report = Simulation::new(cfg, SimConfig::standard())?
        .with_workload(&dynamic)
        .run();

    let video = report.flow_latency[&FlowId(0)];
    let jitter = report.flow_jitter[&FlowId(0)];
    println!(
        "video flow (camera t{CAMERA} -> encoder t{ENCODER}), sharing with dynamic load 0.35:"
    );
    println!(
        "  frames delivered: {}   latency: {:.1} cycles (min {:.0}, max {:.0})   jitter: {:.0}",
        video.count, video.mean, video.min, video.max, jitter
    );
    let bulk = report.class_latency[&0];
    println!(
        "dynamic traffic:   accepted {:.3} flits/node/cycle, mean latency {:.1}, p99 {:.0}",
        report.accepted_flit_rate, bulk.mean, bulk.p99
    );

    assert!(jitter <= 1.0, "pre-scheduled video must be jitter-free");
    println!("\nthe reserved channel kept the video stream jitter-free under load — paper §2.6");
    Ok(())
}
