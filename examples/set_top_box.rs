//! The paper's Figure-1 chip, assembled and run: a set-top-box SoC whose
//! camera, encoder, CPUs, DSP, memories, peripherals, and gateway
//! communicate only over the on-chip network.
//!
//! ```text
//! cargo run --release --example set_top_box
//! ```

use ocin::core::ids::FlowId;
use ocin::sim::{SimConfig, Simulation};
use ocin_soc::{Floorplan, SocWorkload};

fn main() -> Result<(), ocin::core::Error> {
    let plan = Floorplan::set_top_box();
    println!(
        "set-top-box floorplan on the 4x4 folded torus:\n\n{}",
        plan.render()
    );

    let workload = SocWorkload::for_floorplan(&plan);
    let (cfg, matrix) = workload.build(1.0)?;
    println!(
        "dynamic load: {:.3} flits/node/cycle; {} pre-scheduled video flow(s), period {} cycles",
        matrix.mean_load(),
        cfg.static_flows.len(),
        cfg.reservation_period
    );

    let report = Simulation::new(cfg, SimConfig::standard())?
        .with_traffic_matrix(&matrix)
        .run();

    println!("\nresults over {} measured cycles:", report.window);
    println!(
        "  dynamic traffic : accepted {:.3} flits/node/cycle, latency {}",
        report.accepted_flit_rate, report.network_latency
    );
    if let Some(video) = report.flow_latency.get(&FlowId(0)) {
        println!(
            "  video flow      : {} frames, latency {:.1} cycles, jitter {:.1}",
            video.count,
            video.mean,
            report.flow_jitter[&FlowId(0)]
        );
        assert!(report.flow_jitter[&FlowId(0)] <= 1.0);
    }
    println!(
        "  links           : avg utilization {:.3}, max {:.3}",
        report.avg_link_utilization, report.max_link_utilization
    );
    assert_eq!(
        report.unfinished_packets, 0,
        "design load must have headroom"
    );
    println!("\nevery module talks only to the network — no dedicated top-level wires anywhere.");
    Ok(())
}
