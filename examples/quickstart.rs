//! Quickstart: build the paper's baseline network, send packets, and read
//! the statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ocin::core::{Network, NetworkConfig, PacketSpec, ServiceClass};

fn main() -> Result<(), ocin::core::Error> {
    // The DAC 2001 baseline: a 4x4 folded torus of 3mm tiles, 256-bit
    // flits, 8 virtual channels x 4-flit buffers, credit-based VC flow
    // control, 16-bit turn-encoded source routes.
    let mut net = Network::new(NetworkConfig::paper_baseline())?;

    // Send a 1-flit datagram from tile 0 to tile 10 and a 4-flit bulk
    // packet from tile 3 to tile 12.
    let a = net.inject(&PacketSpec::new(0.into(), 10.into()).payload_bits(256))?;
    let b = net.inject(
        &PacketSpec::new(3.into(), 12.into())
            .payload_bits(1024)
            .class(ServiceClass::Bulk),
    )?;
    println!("injected packets {a} and {b}");

    // Step the network until both are delivered.
    let mut delivered = Vec::new();
    while delivered.len() < 2 {
        net.step();
        for node in [10u16, 12] {
            delivered.extend(net.drain_delivered(node.into()));
        }
        assert!(net.cycle() < 1_000, "baseline delivers within a few hops");
    }

    for p in &delivered {
        println!(
            "packet {} : tile {} -> tile {} | {} flit(s) | network latency {} cycles",
            p.id,
            p.src,
            p.dst,
            p.num_flits,
            p.network_latency()
        );
    }

    let s = net.stats();
    println!(
        "\nafter {} cycles: {} packets delivered, {} router traversals, {:.0} bit-pitches of wire",
        s.cycles, s.packets_delivered, s.energy.flit_hops, s.energy.link_bit_pitches
    );
    Ok(())
}
