//! Two chips, one system (paper §1): each tile list includes "gateways
//! to networks on other chips". Two 4×4 folded-torus chips are bridged
//! by gateway tiles over a narrow, pin-limited off-chip link; tiles on
//! either chip exchange datagrams by global address, with the paper's
//! pin asymmetry on display — on-chip hops are cheap and wide, the
//! off-chip hop is serialized and slow.
//!
//! ```text
//! cargo run --release --example two_chip
//! ```

use ocin::core::ids::NodeId;
use ocin::core::NetworkConfig;
use ocin::services::GlobalAddress;
use ocin::sim::MultiChipSim;

fn main() -> Result<(), ocin::core::Error> {
    // Gateways at tile 3 of each chip. The off-chip channel serializes a
    // 256-bit datagram over 8 cycles (a 32-bit pin interface) and takes
    // 20 cycles of board flight time.
    let mut sys = MultiChipSim::new(NetworkConfig::paper_baseline(), NodeId::new(3), 8, 20)?;

    // A burst of cross-chip and local traffic.
    let mut expected = 0;
    for i in 0..12u64 {
        let (src, dst) = if i % 3 == 0 {
            // Local on chip 0.
            (
                GlobalAddress::new(0, ((i % 16) as u16).into()),
                GlobalAddress::new(0, 9.into()),
            )
        } else if i % 3 == 1 {
            // Chip 0 -> chip 1.
            (
                GlobalAddress::new(0, 1.into()),
                GlobalAddress::new(1, (8 + (i % 4) as u16).into()),
            )
        } else {
            // Chip 1 -> chip 0.
            (
                GlobalAddress::new(1, 5.into()),
                GlobalAddress::new(0, ((i % 8) as u16).into()),
            )
        };
        if src.chip == dst.chip && src.node == dst.node {
            continue;
        }
        sys.send(src, dst, vec![0x1000 + i, i]);
        expected += 1;
    }

    sys.run(600);
    let delivered = sys.drain_delivered();

    println!("delivered {} / {expected} datagrams:", delivered.len());
    println!("\nsrc      dst      latency (cycles)  path");
    println!("-------  -------  ----------------  --------------------------");
    let mut local_max = 0;
    let mut cross_min = u64::MAX;
    for d in &delivered {
        let cross = d.dgram.src.chip != d.dgram.dst.chip;
        let lat = d.delivered_at - d.sent_at;
        if cross {
            cross_min = cross_min.min(lat);
        } else {
            local_max = local_max.max(lat);
        }
        println!(
            "{:<7}  {:<7}  {:<16}  {}",
            d.dgram.src.to_string(),
            d.dgram.dst.to_string(),
            lat,
            if cross {
                "on-chip -> gateway -> off-chip link -> gateway -> on-chip"
            } else {
                "on-chip only"
            }
        );
    }
    println!(
        "\noff-chip link carried {} datagrams; slowest local {} cycles, fastest cross-chip {} cycles",
        sys.link_carried(),
        local_max,
        cross_min
    );
    assert_eq!(delivered.len(), expected);
    assert!(
        cross_min > local_max,
        "the pin-limited off-chip hop must dominate"
    );
    println!("\nthe on-chip network is wide and fast; the package pins are the bottleneck — §3.1's 24:1 asymmetry.");
    Ok(())
}
